(* The payoff of functorizing lib/core over ATOMIC: instantiate the
   real native queues with {!Traced_atomic}, run small-scope scenarios
   under {!Explore.Make (Native_machine)}, and judge every complete
   interleaving against the sequential FIFO specification.

   The oracle is two-layered.  First a conservation check: after the
   scenario's processes finish, a driver drains the queue to [None];
   the multiset of values dequeued (during the run and the drain) must
   equal the multiset enqueued — catching lost and duplicated values,
   which plain linearizability of the undrained history would excuse as
   "still in the queue".  Second, {!Lincheck.Checker} verifies the full
   history (operations with their interval order, drain included) is
   linearizable against the sequential FIFO queue — catching reorderings
   that conserve values. *)

module N = Explore.Make (Native_machine)

module type QUEUE = sig
  type 'a t

  val name : string
  val create : unit -> 'a t
  val enqueue : 'a t -> 'a -> unit
  val dequeue : 'a t -> 'a option
end

(* ------------------------------------------------------------------ *)
(* Scenarios: per-process operation scripts.  Values are made unique
   per (process, position) so conservation is a multiset equality and
   the checker can tell elements apart. *)

type op = Enq of int | Deq

type scenario = { sname : string; procs : op list array }

let value ~proc k = (100 * (proc + 1)) + k

(* [procs] processes, each enqueueing then dequeuing [ops] times — the
   general contended workload. *)
let pairs ~procs ~ops =
  {
    sname = Printf.sprintf "pairs-%dx%d" procs ops;
    procs =
      Array.init procs (fun p ->
          List.concat (List.init ops (fun k -> [ Enq (value ~proc:p k); Deq ])));
  }

let scenarios =
  [
    (* two enqueuers racing on the tail: link-CAS vs link-CAS, and the
       E9..E13 window (link done, tail not yet swung) against a second
       enqueue that must help *)
    {
      sname = "enq-enq";
      procs = [| [ Enq 101; Enq 102 ]; [ Enq 201; Enq 202 ] |];
    };
    (* dequeue-on-empty racing an enqueue: the D7-D8 empty verdict must
       be a real linearization point, not a stale snapshot *)
    {
      sname = "deq-empty";
      procs = [| [ Deq; Enq 101; Deq ]; [ Enq 201; Deq ] |];
    };
    (* a dequeuer driving through the mid-enqueue window: head==tail
       with a linked-but-unswung successor forces the D9 help path *)
    { sname = "tail-lag"; procs = [| [ Enq 101 ]; [ Deq; Deq ] |] };
    pairs ~procs:2 ~ops:1;
    pairs ~procs:2 ~ops:2;
    pairs ~procs:3 ~ops:1;
  ]

let find_scenario name = List.find_opt (fun s -> s.sname = name) scenarios

(* ------------------------------------------------------------------ *)
(* Traced instantiations of the native queues. *)

module T_ms = Core.Ms_queue.Make (Traced_atomic)
module T_counted = Core.Ms_queue_counted.Make (Traced_atomic)
module T_hp = Core.Ms_queue_hp.Make (Traced_atomic)
module T_two_lock = Core.Two_lock_queue.Make (Traced_atomic)
module T_segmented = Core.Segmented_queue.Make (Traced_atomic)
module T_scq = Core.Scq_queue.Make (Traced_atomic)

(* The bounded SCQ joins the unbounded battery through an adapter:
   capacity 4 covers the largest scenario's live-item count (enq-enq's
   four unanswered enqueues), so try_enqueue can never refuse and the
   unbounded FIFO spec applies unchanged.  The full/empty verdicts get
   their own bounded battery below. *)
module T_scq_unbounded = struct
  type 'a t = 'a T_scq.t

  let name = "scq"
  let create () = T_scq.create ~capacity:4 ()

  let enqueue q v =
    if not (T_scq.try_enqueue q v) then
      failwith "scq refused an enqueue below capacity"

  let dequeue = T_scq.try_dequeue
end

let queues : (string * (module QUEUE)) list =
  [
    ("ms", (module T_ms));
    ("ms-counted", (module T_counted));
    ("ms-hp", (module T_hp));
    ("two-lock", (module T_two_lock));
    ("segmented", (module T_segmented));
    ("scq", (module T_scq_unbounded));
  ]

let find_queue name = List.assoc_opt name queues

(* ------------------------------------------------------------------ *)
(* The planted bug: Figure 1 with D12's compare_and_set replaced by a
   plain store.  Two dequeuers that both read the same Head then both
   "win" return the same value — the lost-update race the checker must
   find (it needs one preemption between D11 and D12).  Enqueue is the
   correct algorithm, so single-process runs pass. *)
module Broken_ms (A : Core.Atomic_intf.ATOMIC) = struct
  type 'a node = { mutable value : 'a option; next : 'a node option A.t }

  type 'a t = { head : 'a node A.t; tail : 'a node A.t }

  let name = "broken-ms"

  let create () =
    let dummy = { value = None; next = A.make None } in
    { head = A.make dummy; tail = A.make dummy }

  let enqueue t v =
    let node = { value = Some v; next = A.make None } in
    let rec loop () =
      let tail = A.get t.tail in
      let next = A.get tail.next in
      if A.get t.tail == tail then
        match next with
        | None -> if A.compare_and_set tail.next next (Some node) then tail else loop ()
        | Some n ->
            ignore (A.compare_and_set t.tail tail n);
            loop ()
      else loop ()
    in
    let tail = loop () in
    ignore (A.compare_and_set t.tail tail node)

  let dequeue t =
    let rec loop () =
      let head = A.get t.head in
      let tail = A.get t.tail in
      let next = A.get head.next in
      if head == tail then
        match next with
        | None -> None
        | Some n ->
            ignore (A.compare_and_set t.tail tail n);
            loop ()
      else
        match next with
        | None -> loop ()
        | Some n ->
            let value = n.value in
            A.set t.head n; (* the bug: D12 without the CAS *)
            value
    in
    loop ()
end

module Broken = Broken_ms (Traced_atomic)

let broken : (module QUEUE) = (module Broken)

(* ------------------------------------------------------------------ *)
(* Oracle and driver. *)

(* Multiset equality of accepted enqueues vs. dequeued values —
   refused try_enqueues put nothing in the queue and count for
   neither side. *)
let conservation h =
  let enqueued =
    List.filter_map
      (fun e ->
        match e.Lincheck.History.op with
        | Lincheck.History.Enq v | Lincheck.History.Try_enq (v, true) -> Some v
        | Lincheck.History.Try_enq (_, false) | Lincheck.History.Deq _ -> None)
      h
  in
  let dequeued =
    List.filter_map
      (fun e ->
        match e.Lincheck.History.op with
        | Lincheck.History.Deq (Some v) -> Some v
        | Lincheck.History.Deq None
        | Lincheck.History.Enq _
        | Lincheck.History.Try_enq _ ->
            None)
      h
  in
  let sorted = List.sort compare in
  let render vs = String.concat "," (List.map string_of_int vs) in
  if sorted enqueued <> sorted dequeued then
    Error
      (Printf.sprintf "conservation violated: enqueued {%s} but dequeued {%s}"
         (render (sorted enqueued))
         (render (sorted dequeued)))
  else Ok ()

(* [spec]'s context type mentions the unpacked [Q.t], which must not
   escape — so consumers pass in a polymorphic continuation instead of
   receiving the spec. *)
type 'r runner = { go : 'ctx. 'ctx N.spec -> 'r }

let with_spec (module Q : QUEUE) scenario { go } =
  let make () =
    Traced_atomic.reset_ids ();
    let q : int Q.t = Q.create () in
    let recorder = Lincheck.History.create_recorder () in
    let bodies =
      Array.mapi
        (fun i steps () ->
          List.iter
            (fun op ->
              match op with
              | Enq v ->
                  Lincheck.History.record recorder ~proc:i (fun () ->
                      Q.enqueue q v;
                      Lincheck.History.Enq v)
              | Deq ->
                  Lincheck.History.record recorder ~proc:i (fun () ->
                      Lincheck.History.Deq (Q.dequeue q)))
            steps)
        scenario.procs
    in
    ((), (q, recorder), bodies)
  in
  let check_final () (q, recorder) =
    (* Quiescent drain by a driver "process" (its operations run
       untraced — the run is over).  The first None proves emptiness
       sequentially, so conservation must hold exactly. *)
    let driver = Array.length scenario.procs in
    let rec drain () =
      let got = ref None in
      Lincheck.History.record recorder ~proc:driver (fun () ->
          let r = Q.dequeue q in
          got := r;
          Lincheck.History.Deq r);
      if !got <> None then drain ()
    in
    drain ();
    let h = Lincheck.History.history recorder in
    match conservation h with
    | Error _ as e -> e
    | Ok () -> (
        match Lincheck.Checker.check h with
        | Lincheck.Checker.Linearizable -> Ok ()
        | Lincheck.Checker.Not_linearizable ->
            Error "history is not linearizable against the sequential FIFO queue"
        | Lincheck.Checker.Inconclusive ->
            Error "linearizability check inconclusive (configuration budget exhausted)")
  in
  go { N.make; check_final; check_step = None }

let check ?(max_preemptions = 2) ?(max_steps = 10_000) ?(max_runs = 1_000_000)
    ?(max_failures = 5) q scenario =
  with_spec q scenario
    { go = (fun s -> N.explore ~max_preemptions ~max_steps ~max_runs ~max_failures s) }

let check_random ?(max_preemptions = 3) ?(max_steps = 10_000) ?(runs = 1_000)
    ?(max_failures = 5) ~seed q scenario =
  with_spec q scenario
    { go = (fun s -> N.explore_random ~max_preemptions ~max_steps ~runs ~max_failures ~seed s) }

let replay ?(max_steps = 10_000) q scenario schedule =
  with_spec q scenario
    { go = (fun s -> (N.run s ~schedule ~budget:0 ~max_steps).N.status) }

(* ------------------------------------------------------------------ *)
(* Bounded battery: the same explorer over try_enqueue/try_dequeue
   scripts at tiny capacities, judged against the BOUNDED sequential
   spec — a spurious full verdict (or one that loses the element) is a
   failure exactly like a spurious empty. *)

module type BQUEUE = Core.Queue_intf.BOUNDED

type bop = Try_enq of int | Try_deq

type bounded_scenario = {
  bname : string;
  capacity : int;
  bprocs : bop list array;
}

let bounded_scenarios =
  [
    (* two enqueuers racing for the last free slot of a capacity-1
       queue against a dequeuer: exactly one of the competing full
       verdicts may be spurious-free *)
    {
      bname = "b-full-race";
      capacity = 1;
      bprocs = [| [ Try_enq 101; Try_enq 102 ]; [ Try_enq 201; Try_deq ] |];
    };
    (* a dequeuer burning tickets past an in-flight enqueue: the
       enqueuer must abandon its overrun ticket, not deposit into a
       slot whose dequeue ticket already passed (the planted-bug
       scenario) *)
    {
      bname = "b-empty-race";
      capacity = 2;
      bprocs = [| [ Try_enq 101; Try_deq; Try_deq ]; [ Try_enq 201 ] |];
    };
    (* capacity-1 ring wrapping twice under contention: cycle tags and
       catchup under both full and empty verdicts *)
    {
      bname = "b-wrap";
      capacity = 1;
      bprocs =
        [|
          [ Try_enq 101; Try_deq; Try_enq 102; Try_deq ];
          [ Try_enq 201; Try_deq ];
        |];
    };
  ]

let find_bounded_scenario name =
  List.find_opt (fun s -> s.bname = name) bounded_scenarios

let bqueues : (string * (module BQUEUE)) list = [ ("scq", (module T_scq)) ]

let find_bqueue name = List.assoc_opt name bqueues

(* The planted bug for the bounded checker's self-test: SCQ with the
   cycle comparison dropped from the ring-enqueue slot claim.  An
   enqueuer whose ticket was overrun by a dequeuer (which advanced the
   slot to the current cycle and moved on) then deposits into a slot
   whose dequeue ticket has already passed, stranding the value — one
   preemption in [b-empty-race] exposes it as a conservation
   violation.  Dequeue is the correct algorithm. *)
module Broken_scq (A : Core.Atomic_intf.ATOMIC) = struct
  type ring = {
    entries : int A.t array;
    head : int A.t;
    tail : int A.t;
    threshold : int A.t;
    order : int;
  }

  type 'a t = { aq : ring; fq : ring; data : 'a option array; cap : int }

  let name = "broken-scq"
  let imask r = (1 lsl r.order) - 1
  let safe_bit r = 1 lsl r.order

  let pack r ~cycle ~safe ~idx =
    (cycle lsl (r.order + 1)) lor (if safe then safe_bit r else 0) lor idx

  let entry_cycle r e = e asr (r.order + 1)
  let entry_idx r e = e land imask r
  let entry_safe r e = e land safe_bit r <> 0
  let threshold3 r = (1 lsl r.order) + (1 lsl (r.order - 1)) - 1

  let make_ring ~order ~prefill =
    let n2 = 1 lsl order in
    let entries =
      Array.init n2 (fun j ->
          if j < prefill then A.make ((1 lsl order) lor j)
          else A.make (((-1) lsl (order + 1)) lor (1 lsl order) lor (n2 - 1)))
    in
    {
      entries;
      head = A.make 0;
      tail = A.make prefill;
      threshold = A.make (if prefill > 0 then n2 + (n2 / 2) - 1 else -1);
      order;
    }

  let rec enq_ring r idx =
    let t = A.fetch_and_add r.tail 1 in
    let tcycle = t lsr r.order in
    let j = t land imask r in
    deposit r idx ~t ~tcycle ~j (A.get r.entries.(j))

  and deposit r idx ~t ~tcycle ~j e =
    (* the bug: no [entry_cycle r e < tcycle] guard *)
    if entry_idx r e = imask r && (entry_safe r e || A.get r.head <= t) then begin
      if A.compare_and_set r.entries.(j) e (pack r ~cycle:tcycle ~safe:true ~idx)
      then begin
        let thr = threshold3 r in
        if A.get r.threshold <> thr then A.set r.threshold thr
      end
      else deposit r idx ~t ~tcycle ~j (A.get r.entries.(j))
    end
    else enq_ring r idx

  let rec catchup r ~tail ~head =
    if not (A.compare_and_set r.tail tail head) then begin
      let head = A.get r.head in
      let tail = A.get r.tail in
      if tail < head then catchup r ~tail ~head
    end

  let rec deq_ring r =
    if A.get r.threshold < 0 then None
    else begin
      let h = A.fetch_and_add r.head 1 in
      let hcycle = h lsr r.order in
      let j = h land imask r in
      consume r ~h ~hcycle ~j (A.get r.entries.(j))
    end

  and consume r ~h ~hcycle ~j e =
    let ecycle = entry_cycle r e in
    if ecycle = hcycle && entry_idx r e <> imask r then begin
      if A.compare_and_set r.entries.(j) e (e lor imask r) then
        Some (entry_idx r e)
      else consume r ~h ~hcycle ~j (A.get r.entries.(j))
    end
    else begin
      let advanced =
        if ecycle < hcycle then begin
          let desired =
            if entry_idx r e = imask r then
              pack r ~cycle:hcycle ~safe:(entry_safe r e) ~idx:(imask r)
            else e land lnot (safe_bit r)
          in
          desired = e || A.compare_and_set r.entries.(j) e desired
        end
        else true
      in
      if not advanced then consume r ~h ~hcycle ~j (A.get r.entries.(j))
      else begin
        let t = A.get r.tail in
        if t <= h + 1 then begin
          catchup r ~tail:t ~head:(h + 1);
          ignore (A.fetch_and_add r.threshold (-1));
          None
        end
        else if A.fetch_and_add r.threshold (-1) <= 0 then None
        else deq_ring r
      end
    end

  let create ?(capacity = 1024) () =
    let rec order_for k = if 1 lsl k >= capacity then k else order_for (k + 1) in
    let cap_order = order_for 0 in
    let cap = 1 lsl cap_order in
    let order = cap_order + 1 in
    {
      aq = make_ring ~order ~prefill:0;
      fq = make_ring ~order ~prefill:cap;
      data = Array.make cap None;
      cap;
    }

  let capacity t = t.cap

  let try_enqueue t v =
    match deq_ring t.fq with
    | None -> false
    | Some i ->
        t.data.(i) <- Some v;
        enq_ring t.aq i;
        true

  let try_dequeue t =
    match deq_ring t.aq with
    | None -> None
    | Some i ->
        let v = t.data.(i) in
        t.data.(i) <- None;
        enq_ring t.fq i;
        v

  let length t =
    Array.fold_left
      (fun acc e -> if entry_idx t.aq (A.get e) <> imask t.aq then acc + 1 else acc)
      0 t.aq.entries

  let is_empty t = length t = 0
end

module Broken_b = Broken_scq (Traced_atomic)

let broken_bounded : (module BQUEUE) = (module Broken_b)

let with_bounded_spec (module Q : BQUEUE) scenario { go } =
  let make () =
    Traced_atomic.reset_ids ();
    let q : int Q.t = Q.create ~capacity:scenario.capacity () in
    let recorder = Lincheck.History.create_recorder () in
    let bodies =
      Array.mapi
        (fun i steps () ->
          List.iter
            (fun op ->
              match op with
              | Try_enq v ->
                  Lincheck.History.record recorder ~proc:i (fun () ->
                      Lincheck.History.Try_enq (v, Q.try_enqueue q v))
              | Try_deq ->
                  Lincheck.History.record recorder ~proc:i (fun () ->
                      Lincheck.History.Deq (Q.try_dequeue q)))
            steps)
        scenario.bprocs
    in
    ((), (q, recorder), bodies)
  in
  let check_final () (q, recorder) =
    let driver = Array.length scenario.bprocs in
    let rec drain () =
      let got = ref None in
      Lincheck.History.record recorder ~proc:driver (fun () ->
          let r = Q.try_dequeue q in
          got := r;
          Lincheck.History.Deq r);
      if !got <> None then drain ()
    in
    drain ();
    let h = Lincheck.History.history recorder in
    match conservation h with
    | Error _ as e -> e
    | Ok () -> (
        (* Q.capacity, not scenario.capacity: the spec must match the
           rounding the implementation actually enforces *)
        match Lincheck.Checker.check ~capacity:(Q.capacity q) h with
        | Lincheck.Checker.Linearizable -> Ok ()
        | Lincheck.Checker.Not_linearizable ->
            Error
              "history is not linearizable against the bounded sequential queue"
        | Lincheck.Checker.Inconclusive ->
            Error "linearizability check inconclusive (configuration budget exhausted)")
  in
  go { N.make; check_final; check_step = None }

let check_bounded ?(max_preemptions = 2) ?(max_steps = 10_000)
    ?(max_runs = 1_000_000) ?(max_failures = 5) q scenario =
  with_bounded_spec q scenario
    { go = (fun s -> N.explore ~max_preemptions ~max_steps ~max_runs ~max_failures s) }

let check_bounded_random ?(max_preemptions = 3) ?(max_steps = 10_000)
    ?(runs = 1_000) ?(max_failures = 5) ~seed q scenario =
  with_bounded_spec q scenario
    { go = (fun s -> N.explore_random ~max_preemptions ~max_steps ~runs ~max_failures ~seed s) }

let replay_bounded ?(max_steps = 10_000) q scenario schedule =
  with_bounded_spec q scenario
    { go = (fun s -> (N.run s ~schedule ~budget:0 ~max_steps).N.status) }

(* The payoff of functorizing lib/core over ATOMIC: instantiate the
   real native queues with {!Traced_atomic}, run small-scope scenarios
   under {!Explore.Make (Native_machine)}, and judge every complete
   interleaving against the sequential FIFO specification.

   The oracle is two-layered.  First a conservation check: after the
   scenario's processes finish, a driver drains the queue to [None];
   the multiset of values dequeued (during the run and the drain) must
   equal the multiset enqueued — catching lost and duplicated values,
   which plain linearizability of the undrained history would excuse as
   "still in the queue".  Second, {!Lincheck.Checker} verifies the full
   history (operations with their interval order, drain included) is
   linearizable against the sequential FIFO queue — catching reorderings
   that conserve values. *)

module N = Explore.Make (Native_machine)

module type QUEUE = sig
  type 'a t

  val name : string
  val create : unit -> 'a t
  val enqueue : 'a t -> 'a -> unit
  val dequeue : 'a t -> 'a option
end

(* ------------------------------------------------------------------ *)
(* Scenarios: per-process operation scripts.  Values are made unique
   per (process, position) so conservation is a multiset equality and
   the checker can tell elements apart. *)

type op = Enq of int | Deq

type scenario = { sname : string; procs : op list array }

let value ~proc k = (100 * (proc + 1)) + k

(* [procs] processes, each enqueueing then dequeuing [ops] times — the
   general contended workload. *)
let pairs ~procs ~ops =
  {
    sname = Printf.sprintf "pairs-%dx%d" procs ops;
    procs =
      Array.init procs (fun p ->
          List.concat (List.init ops (fun k -> [ Enq (value ~proc:p k); Deq ])));
  }

let scenarios =
  [
    (* two enqueuers racing on the tail: link-CAS vs link-CAS, and the
       E9..E13 window (link done, tail not yet swung) against a second
       enqueue that must help *)
    {
      sname = "enq-enq";
      procs = [| [ Enq 101; Enq 102 ]; [ Enq 201; Enq 202 ] |];
    };
    (* dequeue-on-empty racing an enqueue: the D7-D8 empty verdict must
       be a real linearization point, not a stale snapshot *)
    {
      sname = "deq-empty";
      procs = [| [ Deq; Enq 101; Deq ]; [ Enq 201; Deq ] |];
    };
    (* a dequeuer driving through the mid-enqueue window: head==tail
       with a linked-but-unswung successor forces the D9 help path *)
    { sname = "tail-lag"; procs = [| [ Enq 101 ]; [ Deq; Deq ] |] };
    pairs ~procs:2 ~ops:1;
    pairs ~procs:2 ~ops:2;
    pairs ~procs:3 ~ops:1;
  ]

let find_scenario name = List.find_opt (fun s -> s.sname = name) scenarios

(* ------------------------------------------------------------------ *)
(* Traced instantiations of the native queues. *)

module T_ms = Core.Ms_queue.Make (Traced_atomic)
module T_counted = Core.Ms_queue_counted.Make (Traced_atomic)
module T_hp = Core.Ms_queue_hp.Make (Traced_atomic)
module T_two_lock = Core.Two_lock_queue.Make (Traced_atomic)
module T_segmented = Core.Segmented_queue.Make (Traced_atomic)

let queues : (string * (module QUEUE)) list =
  [
    ("ms", (module T_ms));
    ("ms-counted", (module T_counted));
    ("ms-hp", (module T_hp));
    ("two-lock", (module T_two_lock));
    ("segmented", (module T_segmented));
  ]

let find_queue name = List.assoc_opt name queues

(* ------------------------------------------------------------------ *)
(* The planted bug: Figure 1 with D12's compare_and_set replaced by a
   plain store.  Two dequeuers that both read the same Head then both
   "win" return the same value — the lost-update race the checker must
   find (it needs one preemption between D11 and D12).  Enqueue is the
   correct algorithm, so single-process runs pass. *)
module Broken_ms (A : Core.Atomic_intf.ATOMIC) = struct
  type 'a node = { mutable value : 'a option; next : 'a node option A.t }

  type 'a t = { head : 'a node A.t; tail : 'a node A.t }

  let name = "broken-ms"

  let create () =
    let dummy = { value = None; next = A.make None } in
    { head = A.make dummy; tail = A.make dummy }

  let enqueue t v =
    let node = { value = Some v; next = A.make None } in
    let rec loop () =
      let tail = A.get t.tail in
      let next = A.get tail.next in
      if A.get t.tail == tail then
        match next with
        | None -> if A.compare_and_set tail.next next (Some node) then tail else loop ()
        | Some n ->
            ignore (A.compare_and_set t.tail tail n);
            loop ()
      else loop ()
    in
    let tail = loop () in
    ignore (A.compare_and_set t.tail tail node)

  let dequeue t =
    let rec loop () =
      let head = A.get t.head in
      let tail = A.get t.tail in
      let next = A.get head.next in
      if head == tail then
        match next with
        | None -> None
        | Some n ->
            ignore (A.compare_and_set t.tail tail n);
            loop ()
      else
        match next with
        | None -> loop ()
        | Some n ->
            let value = n.value in
            A.set t.head n; (* the bug: D12 without the CAS *)
            value
    in
    loop ()
end

module Broken = Broken_ms (Traced_atomic)

let broken : (module QUEUE) = (module Broken)

(* ------------------------------------------------------------------ *)
(* Oracle and driver. *)

(* [spec]'s context type mentions the unpacked [Q.t], which must not
   escape — so consumers pass in a polymorphic continuation instead of
   receiving the spec. *)
type 'r runner = { go : 'ctx. 'ctx N.spec -> 'r }

let with_spec (module Q : QUEUE) scenario { go } =
  let make () =
    Traced_atomic.reset_ids ();
    let q : int Q.t = Q.create () in
    let recorder = Lincheck.History.create_recorder () in
    let bodies =
      Array.mapi
        (fun i steps () ->
          List.iter
            (fun op ->
              match op with
              | Enq v ->
                  Lincheck.History.record recorder ~proc:i (fun () ->
                      Q.enqueue q v;
                      Lincheck.History.Enq v)
              | Deq ->
                  Lincheck.History.record recorder ~proc:i (fun () ->
                      Lincheck.History.Deq (Q.dequeue q)))
            steps)
        scenario.procs
    in
    ((), (q, recorder), bodies)
  in
  let check_final () (q, recorder) =
    (* Quiescent drain by a driver "process" (its operations run
       untraced — the run is over).  The first None proves emptiness
       sequentially, so conservation must hold exactly. *)
    let driver = Array.length scenario.procs in
    let rec drain () =
      let got = ref None in
      Lincheck.History.record recorder ~proc:driver (fun () ->
          let r = Q.dequeue q in
          got := r;
          Lincheck.History.Deq r);
      if !got <> None then drain ()
    in
    drain ();
    let h = Lincheck.History.history recorder in
    let enqueued =
      List.filter_map
        (fun e ->
          match e.Lincheck.History.op with
          | Lincheck.History.Enq v -> Some v
          | Lincheck.History.Deq _ -> None)
        h
    in
    let dequeued =
      List.filter_map
        (fun e ->
          match e.Lincheck.History.op with
          | Lincheck.History.Deq (Some v) -> Some v
          | Lincheck.History.Deq None | Lincheck.History.Enq _ -> None)
        h
    in
    let sorted = List.sort compare in
    let render vs = String.concat "," (List.map string_of_int vs) in
    if sorted enqueued <> sorted dequeued then
      Error
        (Printf.sprintf "conservation violated: enqueued {%s} but dequeued {%s}"
           (render (sorted enqueued))
           (render (sorted dequeued)))
    else
      match Lincheck.Checker.check h with
      | Lincheck.Checker.Linearizable -> Ok ()
      | Lincheck.Checker.Not_linearizable ->
          Error "history is not linearizable against the sequential FIFO queue"
      | Lincheck.Checker.Inconclusive ->
          Error "linearizability check inconclusive (configuration budget exhausted)"
  in
  go { N.make; check_final; check_step = None }

let check ?(max_preemptions = 2) ?(max_steps = 10_000) ?(max_runs = 1_000_000)
    ?(max_failures = 5) q scenario =
  with_spec q scenario
    { go = (fun s -> N.explore ~max_preemptions ~max_steps ~max_runs ~max_failures s) }

let check_random ?(max_preemptions = 3) ?(max_steps = 10_000) ?(runs = 1_000)
    ?(max_failures = 5) ~seed q scenario =
  with_spec q scenario
    { go = (fun s -> N.explore_random ~max_preemptions ~max_steps ~runs ~max_failures ~seed s) }

let replay ?(max_steps = 10_000) q scenario schedule =
  with_spec q scenario
    { go = (fun s -> (N.run s ~schedule ~budget:0 ~max_steps).N.status) }

(** Exhaustive small-scope model checking of the {e native} queue
    implementations — the payoff of [lib/core]'s functorization over
    {!Core.Atomic_intf.ATOMIC}.

    Each registered queue functor is instantiated with
    {!Traced_atomic}, so the exact shipping algorithm text (including
    the hazard-pointer protect/retire windows and the two-lock queue's
    lock words) runs under {!Explore.Make}[(]{!Native_machine}[)]:
    every interleaving of atomic operations within the preemption
    budget is executed, and each complete run is judged against the
    sequential FIFO specification by a two-layer oracle —

    - {e conservation}: after the processes finish, a driver drains the
      queue; the dequeued multiset (run + drain) must equal the
      enqueued multiset, catching lost and duplicated values;
    - {e linearizability}: {!Lincheck.Checker} verifies the recorded
      history (drain included) is linearizable against a sequential
      FIFO queue, catching reorderings that conserve values.

    Used by [test/test_mcheck_native.ml] and the [msq_check
    mcheck-native] subcommand. *)

module N : Explore.EXPLORER with type env = unit
(** The explorer over {!Native_machine}, exposed for custom specs and
    for replaying failure schedules. *)

(** The queue surface the scenarios drive (any {!Core.Queue_intf.S}
    satisfies it). *)
module type QUEUE = sig
  type 'a t

  val name : string
  val create : unit -> 'a t
  val enqueue : 'a t -> 'a -> unit
  val dequeue : 'a t -> 'a option
end

type op = Enq of int | Deq

type scenario = { sname : string; procs : op list array }
(** One operation script per process. *)

val pairs : procs:int -> ops:int -> scenario
(** [procs] processes each running [ops] enqueue/dequeue pairs. *)

val scenarios : scenario list
(** The default small-scope battery: enqueue/enqueue races,
    dequeue-empty vs. enqueue, the mid-enqueue (link-CAS before
    tail-swing) window, and 2–3 process pair workloads. *)

val find_scenario : string -> scenario option

val queues : (string * (module QUEUE)) list
(** Traced instantiations of the native queues: ms, ms-counted, ms-hp,
    two-lock, segmented, and the bounded scq behind an unbounded
    adapter (capacity 4, above any scenario's live-item count, so
    [try_enqueue] cannot refuse and the FIFO spec applies). *)

val find_queue : string -> (module QUEUE) option

(** The planted bug (validation that the checker checks): Figure 1
    with D12's Head compare_and_set replaced by a plain store, so two
    racing dequeuers can both take the same node.  One preemption
    suffices to expose it. *)
module Broken_ms (_ : Core.Atomic_intf.ATOMIC) : QUEUE

val broken : (module QUEUE)
(** [Broken_ms] over {!Traced_atomic}. *)

val check :
  ?max_preemptions:int ->
  ?max_steps:int ->
  ?max_runs:int ->
  ?max_failures:int ->
  (module QUEUE) ->
  scenario ->
  Explore.outcome
(** Exhaustive exploration of one queue under one scenario.  Defaults:
    2 preemptions, 10_000 steps per run (the depth limit), 1_000_000
    runs, stop after 5 failures. *)

val check_random :
  ?max_preemptions:int ->
  ?max_steps:int ->
  ?runs:int ->
  ?max_failures:int ->
  seed:int64 ->
  (module QUEUE) ->
  scenario ->
  Explore.outcome
(** Randomized companion for scopes beyond the exhaustive budget. *)

val replay :
  ?max_steps:int ->
  (module QUEUE) ->
  scenario ->
  Explore.schedule ->
  [ `Completed | `Diverged | `Failed of Explore.failure ]
(** Re-execute one schedule (e.g. a reported counterexample) and
    return its verdict — deterministic, so a failure's schedule
    reproduces its trace exactly. *)

(** {2 Bounded battery}

    The same explorer over [try_enqueue]/[try_dequeue] scripts at tiny
    capacities, judged by conservation (refused enqueues count for
    neither side) plus {!Lincheck.Checker.check} with [~capacity] — so
    a spurious full verdict, or one that loses the element, fails
    exactly like a spurious empty. *)

module type BQUEUE = Core.Queue_intf.BOUNDED

type bop = Try_enq of int | Try_deq

type bounded_scenario = {
  bname : string;
  capacity : int;
  bprocs : bop list array;
}

val bounded_scenarios : bounded_scenario list
(** Full-verdict race at capacity 1, dequeuer-overrun vs. in-flight
    enqueue (the planted-bug scenario), and a capacity-1 double wrap. *)

val find_bounded_scenario : string -> bounded_scenario option

val bqueues : (string * (module BQUEUE)) list
(** Traced bounded queues: scq. *)

val find_bqueue : string -> (module BQUEUE) option

(** The planted bug for the bounded self-test: SCQ with the cycle
    comparison dropped from the ring-enqueue slot claim, so an
    enqueuer overrun by a dequeuer deposits into a slot whose dequeue
    ticket already passed and strands the value.  One preemption in
    the [b-empty-race] scenario exposes it. *)
module Broken_scq (_ : Core.Atomic_intf.ATOMIC) : BQUEUE

val broken_bounded : (module BQUEUE)
(** [Broken_scq] over {!Traced_atomic}. *)

val check_bounded :
  ?max_preemptions:int ->
  ?max_steps:int ->
  ?max_runs:int ->
  ?max_failures:int ->
  (module BQUEUE) ->
  bounded_scenario ->
  Explore.outcome

val check_bounded_random :
  ?max_preemptions:int ->
  ?max_steps:int ->
  ?runs:int ->
  ?max_failures:int ->
  seed:int64 ->
  (module BQUEUE) ->
  bounded_scenario ->
  Explore.outcome

val replay_bounded :
  ?max_steps:int ->
  (module BQUEUE) ->
  bounded_scenario ->
  Explore.schedule ->
  [ `Completed | `Diverged | `Failed of Explore.failure ]

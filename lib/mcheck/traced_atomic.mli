(** A {!Core.Atomic_intf.ATOMIC} whose primitives are effects: each
    operation suspends the calling coroutine-process until the
    scheduler ({!Native_machine}) decides it commits.  Instantiating a
    [lib/core] queue functor with this module turns the real native
    implementation into a model-checkable program — same code text,
    scheduled one atomic operation at a time.

    One atomic primitive is one scheduling step; [relax] (spin-wait) is
    a step that additionally hints the scheduler to rotate, and [dls]
    is keyed by explored process, so hazard-pointer slots are
    per-process exactly as they are per-domain natively.

    Operations performed while no run is active — during [spec.make]
    setup or post-run inspection — execute immediately without an
    effect. *)

include Core.Atomic_intf.ATOMIC

(** {2 Machinery used by {!Native_machine}} *)

type kind = Get | Set | Exchange | Cas | Faa | Relax

type op = { kind : kind; cell : int }
(** [cell] is a small dense id assigned at [make] time; [-1] for
    [relax], which touches no cell. *)

type _ Effect.t += Step : op -> unit Effect.t
(** Performed before each primitive executes; the operation commits
    when the continuation is resumed. *)

val current : int ref
(** Index of the process the machine is currently resuming; [-1] when
    no run is active (operations then execute unscheduled). *)

val reset_ids : unit -> unit
(** Restart cell numbering; call at the start of each run so identical
    schedules produce identical traces. *)

val op_to_string : op -> string

(* Deterministic one-operation stepping of native code: the bodies run
   as effect-handler coroutines of the host thread, suspending at each
   {!Traced_atomic} primitive.  A [step i] resume commits process [i]'s
   pending operation and runs it to its next announce — so exactly one
   atomic operation commits per step, the granularity the explorer's
   preemption bound counts. *)

type resumed =
  | Done
  | Suspended of (unit, resumed) Effect.Deep.continuation * Traced_atomic.op
  | Raised of exn

type proc =
  | Ready of (unit -> unit)
  | Paused of (unit, resumed) Effect.Deep.continuation * Traced_atomic.op
  | Finished

type t = {
  procs : proc array;
  mutable steps : int;
  mutable failed : (int * exn) option;
  mutable log : (int * Traced_atomic.op) list;  (* committed ops, newest first *)
}

type env = unit

let handler : (unit, resumed) Effect.Deep.handler =
  {
    retc = (fun () -> Done);
    exnc = (fun e -> Raised e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Traced_atomic.Step op ->
            Some
              (fun (k : (a, resumed) Effect.Deep.continuation) -> Suspended (k, op))
        | _ -> None);
  }

let start () bodies =
  { procs = Array.map (fun b -> Ready b) bodies; steps = 0; failed = None; log = [] }

let n_procs t = Array.length t.procs

let enabled t =
  let out = ref [] in
  Array.iteri (fun i p -> if p <> Finished then out := i :: !out) t.procs;
  List.rev !out

let all_done t = Array.for_all (fun p -> p = Finished) t.procs

let step t i =
  (match t.procs.(i) with
  | Finished -> invalid_arg "Native_machine.step: process already finished"
  | _ -> ());
  t.steps <- t.steps + 1;
  Traced_atomic.current := i;
  let r =
    match t.procs.(i) with
    | Ready body ->
        (* first activation: run the prefix up to the first announce *)
        Effect.Deep.match_with body () handler
    | Paused (k, op) ->
        (* resuming commits the announced operation *)
        t.log <- (i, op) :: t.log;
        Effect.Deep.continue k ()
    | Finished -> assert false
  in
  Traced_atomic.current := -1;
  match r with
  | Done ->
      t.procs.(i) <- Finished;
      `Finished
  | Raised e ->
      t.procs.(i) <- Finished;
      if t.failed = None then t.failed <- Some (i, e);
      `Finished
  | Suspended (k, op) ->
      t.procs.(i) <- Paused (k, op);
      (* a process parked at a spin-wait asks the scheduler to rotate,
         mirroring the sim machine's work/yield fairness contract *)
      if op.kind = Traced_atomic.Relax then `Pause_hint else `Ran

let failure t = t.failed

let steps_taken t = t.steps

let trace t =
  List.rev_map
    (fun (i, op) -> Printf.sprintf "p%d: %s" i (Traced_atomic.op_to_string op))
    t.log

(* An [ATOMIC] whose every primitive is a scheduling point, in the
   dscheck style: before executing, the operation performs a [Step]
   effect that suspends the calling process, handing the decision of
   when it commits to {!Native_machine}'s scheduler.  All processes run
   as coroutines of one host thread, so between effects the code is
   sequential and the interleaving is exactly the schedule chosen.

   The granularity is one atomic primitive = one step, matching the
   paper's model (and the sim machine's): plain loads/stores of node
   payloads between two atomics commit atomically with the preceding
   resume, which only strengthens the adversary we check against for
   data structures whose synchronization is entirely through atomics.

   Outside a run (no process registered as current), operations execute
   immediately: spec setup ([create] before the machine starts) and
   post-run inspection ([length], the final drain) need no scheduling. *)

type kind = Get | Set | Exchange | Cas | Faa | Relax

type op = { kind : kind; cell : int }

let op_to_string { kind; cell } =
  match kind with
  | Get -> Printf.sprintf "get c%d" cell
  | Set -> Printf.sprintf "set c%d" cell
  | Exchange -> Printf.sprintf "exchange c%d" cell
  | Cas -> Printf.sprintf "cas c%d" cell
  | Faa -> Printf.sprintf "fetch_and_add c%d" cell
  | Relax -> "relax (spin-wait)"

type _ Effect.t += Step : op -> unit Effect.t

(* Index of the process currently executing under a machine; -1 when no
   run is active.  Set by Native_machine around each resume. *)
let current = ref (-1)

(* Cells get small dense ids so traces are readable and stable; reset at
   the start of each run ([Core_explore]'s spec.make) so identical
   schedules render identical traces. *)
let next_cell_id = ref 0

let reset_ids () = next_cell_id := 0

type 'a t = { mutable v : 'a; id : int }

let announce kind cell = if !current >= 0 then Effect.perform (Step { kind; cell })

let make v =
  let id = !next_cell_id in
  incr next_cell_id;
  { v; id }

let make_contended = make

let get t =
  announce Get t.id;
  t.v

let set t v =
  announce Set t.id;
  t.v <- v

let exchange t v =
  announce Exchange t.id;
  let old = t.v in
  t.v <- v;
  old

let compare_and_set t expected desired =
  announce Cas t.id;
  if t.v == expected then begin
    t.v <- desired;
    true
  end
  else false

let fetch_and_add t n =
  announce Faa t.id;
  let old = t.v in
  t.v <- old + n;
  old

let incr t = ignore (fetch_and_add t 1)
let decr t = ignore (fetch_and_add t (-1))

(* The spin-wait hint: a pure yield.  Native_machine maps it to
   [`Pause_hint] so the explorer rotates to another process — the
   analogue of the sim machine's [work]/[yield] fairness contract —
   which is what lets lock spins and publish waits terminate under a
   single-threaded exploration. *)
let relax () = announce Relax (-1)

(* "Domain-local" storage keyed by explored process: each model process
   gets its own slot, exactly as each domain would natively.  Accessed
   outside a run (e.g. by the final-check drain), it uses a dedicated
   key, modelling the driver thread. *)
type 'a dls = { tbl : (int, 'a) Hashtbl.t; init : unit -> 'a }

let dls_new init = { tbl = Hashtbl.create 8; init }

let dls_get d =
  let who = !current in
  match Hashtbl.find_opt d.tbl who with
  | Some v -> v
  | None ->
      let v = d.init () in
      Hashtbl.add d.tbl who v;
      v

type schedule = (int * int) list

type failure = {
  schedule : schedule;
  message : string;
  at_step : int option;
  trace : string list;
}

type outcome = {
  runs : int;
  failures : failure list;
  diverged : int;
}

let pp_schedule fmt = function
  | [] -> Format.fprintf fmt "(no preemptions)"
  | schedule ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
        (fun fmt (s, p) -> Format.fprintf fmt "step %d -> p%d" s p)
        fmt schedule

(* What the exploration algorithm needs from an execution substrate.
   Two machines satisfy it: {!Machine} runs simulated processes against
   {!Sim.Memory}, {!Native_machine} runs native OCaml code whose atomics
   are {!Traced_atomic} effects.  The scheduling contract is identical:
   [step m i] executes exactly one operation of process [i], and
   [`Pause_hint] marks a spin-wait (backoff, lock spin), telling the
   scheduler to rotate at no preemption cost. *)
module type MACHINE = sig
  type env
  (** Whatever [spec.make] must produce besides the bodies (the sim
      engine; unit for the native machine). *)

  type t

  val start : env -> (unit -> unit) array -> t
  val n_procs : t -> int
  val enabled : t -> int list
  val all_done : t -> bool
  val step : t -> int -> [ `Ran | `Finished | `Pause_hint ]
  val failure : t -> (int * exn) option
  val steps_taken : t -> int

  val trace : t -> string list
  (** Human-readable rendering of the operations executed so far, in
      execution order; [[]] if the machine does not record one. *)
end

module type EXPLORER = sig
  type env

  type 'ctx spec = {
    make : unit -> env * 'ctx * (unit -> unit) array;
    check_final : env -> 'ctx -> (unit, string) result;
    check_step : (env -> 'ctx -> (unit, string) result) option;
  }

  type run_result = {
    status : [ `Completed | `Diverged | `Failed of failure ];
    branches : schedule list;
  }

  val run : 'ctx spec -> schedule:schedule -> budget:int -> max_steps:int -> run_result

  val explore :
    ?max_preemptions:int ->
    ?max_steps:int ->
    ?max_runs:int ->
    ?max_failures:int ->
    'ctx spec ->
    outcome

  val explore_random :
    ?max_preemptions:int ->
    ?max_steps:int ->
    ?runs:int ->
    ?max_failures:int ->
    seed:int64 ->
    'ctx spec ->
    outcome
end

module Make (M : MACHINE) = struct
  type env = M.env

  type 'ctx spec = {
    make : unit -> env * 'ctx * (unit -> unit) array;
    check_final : env -> 'ctx -> (unit, string) result;
    check_step : (env -> 'ctx -> (unit, string) result) option;
  }

  type run_result = {
    status : [ `Completed | `Diverged | `Failed of failure ];
    branches : schedule list;  (** fresh schedules discovered during the run *)
  }

  (* The next enabled process at or after [i], cyclically. *)
  let next_enabled m i =
    match M.enabled m with
    | [] -> None
    | enabled -> (
        match List.find_opt (fun j -> j >= i) enabled with
        | Some j -> Some j
        | None -> Some (List.hd enabled))

  let run spec ~schedule ~budget ~max_steps =
    let eng, ctx, bodies = spec.make () in
    let m = M.start eng bodies in
    let last_scheduled = List.fold_left (fun acc (s, _) -> max acc s) (-1) schedule in
    let pending = ref schedule in
    let branches = ref [] in
    let preemptions = List.length schedule in
    let current = ref 0 in
    let failed = ref None in
    let diverged = ref false in
    let fail message at_step =
      failed := Some { schedule; message; at_step; trace = M.trace m }
    in
    let rec loop () =
      if M.all_done m then ()
      else if M.steps_taken m >= max_steps then diverged := true
      else begin
        (match next_enabled m !current with
        | None -> ()
        | Some c -> current := c);
        let step_idx = M.steps_taken m in
        (* apply a scheduled preemption at this operation boundary *)
        (match !pending with
        | (s, target) :: rest when s = step_idx ->
            pending := rest;
            if List.mem target (M.enabled m) then current := target
        | _ ->
            (* past the prescribed prefix: this boundary is a branch point *)
            if !pending = [] && preemptions < budget && step_idx > last_scheduled then
              List.iter
                (fun j ->
                  if j <> !current then
                    branches := (schedule @ [ (step_idx, j) ]) :: !branches)
                (M.enabled m));
        let r = M.step m !current in
        (match spec.check_step with
        | Some check when !failed = None -> (
            match check eng ctx with
            | Ok () -> ()
            | Error message -> fail message (Some step_idx))
        | _ -> ());
        (match r with
        | `Pause_hint | `Finished -> current := !current + 1 (* rotate *)
        | `Ran -> ());
        if !failed = None then loop ()
      end
    in
    loop ();
    let status =
      match !failed with
      | Some f -> `Failed f
      | None ->
          if !diverged then `Diverged
          else begin
            match M.failure m with
            | Some (i, e) ->
                fail
                  (Printf.sprintf "process %d raised %s" i (Printexc.to_string e))
                  None;
                `Failed (Option.get !failed)
            | None -> (
                match spec.check_final eng ctx with
                | Ok () -> `Completed
                | Error message ->
                    fail message None;
                    `Failed (Option.get !failed))
          end
    in
    { status; branches = !branches }

  let explore ?(max_preemptions = 2) ?(max_steps = 100_000) ?(max_runs = 1_000_000)
      ?(max_failures = 5) spec =
    let stack = ref [ [] ] in
    let runs = ref 0 in
    let diverged = ref 0 in
    let failures = ref [] in
    let n_failures = ref 0 in
    while !stack <> [] && !runs < max_runs && !n_failures < max_failures do
      match !stack with
      | [] -> ()
      | schedule :: rest ->
          stack := rest;
          incr runs;
          let result = run spec ~schedule ~budget:max_preemptions ~max_steps in
          (match result.status with
          | `Completed -> ()
          | `Diverged -> incr diverged
          | `Failed f ->
              failures := f :: !failures;
              incr n_failures);
          stack := result.branches @ !stack
    done;
    { runs = !runs; failures = List.rev !failures; diverged = !diverged }

  let explore_random ?(max_preemptions = 3) ?(max_steps = 100_000) ?(runs = 1_000)
      ?(max_failures = 5) ~seed spec =
    let rng = Sim.Rng.create seed in
    let n_runs = ref 0 in
    let diverged = ref 0 in
    let failures = ref [] in
    (* First, a plain run to estimate the schedule length. *)
    let probe = run spec ~schedule:[] ~budget:0 ~max_steps in
    (match probe.status with
    | `Failed f -> failures := [ f ]
    | `Diverged -> incr diverged
    | `Completed -> ());
    incr n_runs;
    let horizon, n_procs =
      (* length of the serial run, to place preemption points within it *)
      let eng, _, bodies = spec.make () in
      let m = M.start eng bodies in
      let rec drain current steps =
        if M.all_done m || steps > max_steps then steps
        else
          match next_enabled m current with
          | None -> steps
          | Some c -> (
              match M.step m c with
              | `Pause_hint | `Finished -> drain (c + 1) (steps + 1)
              | `Ran -> drain c (steps + 1))
      in
      (max 4 (drain 0 0), M.n_procs m)
    in
    while !n_runs < runs && List.length !failures < max_failures do
      let k = 1 + Sim.Rng.int rng max_preemptions in
      let points =
        List.init k (fun _ -> Sim.Rng.int rng horizon)
        |> List.sort_uniq compare
        (* switch targets are drawn over all processes; [run] ignores a
           preemption whose target is not enabled at that boundary *)
        |> List.map (fun s -> (s, Sim.Rng.int rng n_procs))
      in
      let result = run spec ~schedule:points ~budget:0 ~max_steps in
      incr n_runs;
      (match result.status with
      | `Completed -> ()
      | `Diverged -> incr diverged
      | `Failed f -> failures := f :: !failures)
    done;
    { runs = !n_runs; failures = List.rev !failures; diverged = !diverged }
end

(* The historical interface: exploration over the simulated machine.
   [include]d so existing callers ([Explore.explore spec] over sim
   processes) keep working unchanged. *)
include Make (struct
  include Machine

  type env = Sim.Engine.t

  let trace _ = []
end)

open Sim

type proc_state =
  | Runnable of (Op.reply -> Api.step) * Op.reply
  | Done

type t = {
  mem : Memory.t;
  hp : Heap.t;
  procs : proc_state array;
  mutable first_failure : (int * exn) option;
  mutable steps : int;
}

let start eng bodies =
  let n = Array.length bodies in
  if n > (Engine.config eng).Config.n_processors then
    invalid_arg "Machine.start: more processes than simulated processors";
  {
    mem = Engine.memory eng;
    hp = Engine.heap eng;
    procs =
      Array.map (fun body -> Runnable ((fun _ -> Api.reify body ()), Op.Unit)) bodies;
    first_failure = None;
    steps = 0;
  }

let n_procs t = Array.length t.procs

let enabled t =
  let acc = ref [] in
  for i = Array.length t.procs - 1 downto 0 do
    match t.procs.(i) with
    | Runnable _ -> acc := i :: !acc
    | Done -> ()
  done;
  !acc

let all_done t = Array.for_all (function Done -> true | Runnable _ -> false) t.procs

(* Same functional semantics as Engine.exec_op, without the cost model. *)
let exec_op t ~proc (op : Op.t) : Op.reply =
  match op with
  | Op.Read a -> Op.Word (Memory.read t.mem ~proc a)
  | Op.Write (a, v) ->
      Memory.write t.mem ~proc a v;
      Op.Unit
  | Op.Cas { addr; expected; desired } ->
      Op.Bool (Memory.cas t.mem ~proc addr ~expected ~desired)
  | Op.Fetch_and_add (a, d) -> Op.Word (Memory.fetch_and_add t.mem ~proc a d)
  | Op.Swap (a, v) -> Op.Word (Memory.swap t.mem ~proc a v)
  | Op.Test_and_set a -> Op.Bool (Memory.test_and_set t.mem ~proc a)
  | Op.Load_linked a -> Op.Word (Memory.load_linked t.mem ~proc a)
  | Op.Store_conditional (a, v) -> Op.Bool (Memory.store_conditional t.mem ~proc a v)
  | Op.Alloc n -> Op.Int (Heap.alloc t.hp n)
  | Op.Free { addr; size } ->
      Heap.free t.hp ~addr ~size;
      Op.Unit
  | Op.Work _ | Op.Yield | Op.Count _ | Op.Progress
  | Op.Phase_begin _ | Op.Phase_end _ -> Op.Unit
  | Op.Now -> Op.Int t.steps
  | Op.Self -> Op.Int proc

let step t i =
  match t.procs.(i) with
  | Done -> invalid_arg "Machine.step: process already finished"
  | Runnable (k, reply) -> (
      t.steps <- t.steps + 1;
      match k reply with
      | Api.Done ->
          t.procs.(i) <- Done;
          `Finished
      | Api.Raised e ->
          t.procs.(i) <- Done;
          if t.first_failure = None then t.first_failure <- Some (i, e);
          `Finished
      | Api.Pending (op, k') ->
          let reply' = exec_op t ~proc:i op in
          t.procs.(i) <- Runnable (k', reply');
          (match op with
          | Op.Work _ | Op.Yield -> `Pause_hint
          | _ -> `Ran))

let failure t = t.first_failure
let steps_taken t = t.steps

(** Deterministic single-step execution of simulated processes, for
    schedule exploration.

    Unlike {!Sim.Engine}, which advances processes by a clock-driven
    cost model, this machine executes exactly the operation the caller
    chooses, against the same {!Sim.Memory}/{!Sim.Heap} semantics and at
    the same operation granularity.  {!Explore} drives it through every
    schedule of interest; timing-related operations ([work], [count])
    are no-ops here because only interleaving matters. *)

type t

val start : Sim.Engine.t -> (unit -> unit) array -> t
(** Wrap the process bodies.  Process [i] issues memory operations as
    simulated processor [i], so the engine must have been created with
    at least as many processors as there are bodies. *)

val n_procs : t -> int

val enabled : t -> int list
(** Indices of processes that have not yet finished (or failed). *)

val all_done : t -> bool

val step : t -> int -> [ `Ran | `Finished | `Pause_hint ]
(** Execute one operation of the given process.  [`Finished] means the
    process body returned (or raised — see {!failure}); [`Pause_hint]
    means the operation was a [work]/[yield], i.e. the process expects
    others to run (spin-wait backoff) — schedulers should rotate.
    Raises [Invalid_argument] if the process already finished. *)

val failure : t -> (int * exn) option
(** First process failure, if any. *)

val steps_taken : t -> int

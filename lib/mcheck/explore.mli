(** Preemption-bounded schedule exploration (in the style of CHESS,
    Musuvathi & Qadeer).

    Mechanizes the paper's race-finding methodology — the authors found
    the races in Stone's queues during "hours-long executions"; here the
    same interleavings are enumerated systematically.  The scheduler runs
    one process at a time and considers switching to each other enabled
    process at every operation boundary, up to a preemption budget.
    Most concurrency bugs, including both Stone races described in §1,
    manifest within one or two preemptions, so a small budget explores a
    polynomial number of schedules yet finds them deterministically.

    Spin-waits are handled by fairness rather than budget: an operation
    that signals waiting ([work]/[yield], i.e. backoff) rotates the
    scheduler to the next enabled process at no preemption cost, so
    blocking algorithms make progress; a schedule that still exceeds
    [max_steps] is reported as diverged (evidence of unbounded
    blocking). *)

type schedule = (int * int) list
(** Preemption points: [(step_index, process)] pairs, in order. *)

type 'ctx spec = {
  make : unit -> Sim.Engine.t * 'ctx * (unit -> unit) array;
      (** A fresh instance per schedule: engine, an inspection context
          (typically the queue handle), and the process bodies. *)
  check_final : Sim.Engine.t -> 'ctx -> (unit, string) result;
      (** Validated after every complete run. *)
  check_step : (Sim.Engine.t -> 'ctx -> (unit, string) result) option;
      (** Optionally validated after every operation (e.g. structural
          invariants); [None] to skip. *)
}

type failure = {
  schedule : schedule;  (** the preemptions that produced the failure *)
  message : string;
  at_step : int option;  (** step index for per-step check failures *)
}

type outcome = {
  runs : int;  (** schedules executed *)
  failures : failure list;  (** first [max_failures], most-recent last *)
  diverged : int;  (** runs that exceeded [max_steps] *)
}

val explore :
  ?max_preemptions:int ->
  ?max_steps:int ->
  ?max_runs:int ->
  ?max_failures:int ->
  'ctx spec ->
  outcome
(** Defaults: 2 preemptions, 100_000 steps per run, 1_000_000 runs,
    stop after 5 failures. *)

val explore_random :
  ?max_preemptions:int ->
  ?max_steps:int ->
  ?runs:int ->
  ?max_failures:int ->
  seed:int64 ->
  'ctx spec ->
  outcome
(** Probabilistic companion to {!explore} for configurations whose
    systematic schedule space is too large: each run places up to
    [max_preemptions] (default 3) preemptions at uniformly random
    operation boundaries, switching to a uniformly random other enabled
    process.  [runs] defaults to 1_000.  Deterministic in [seed].
    Complements, never replaces, the exhaustive mode: use it to push
    beyond 2 processes x 1 operation. *)

val pp_schedule : Format.formatter -> schedule -> unit

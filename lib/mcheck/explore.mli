(** Preemption-bounded schedule exploration (in the style of CHESS,
    Musuvathi & Qadeer).

    Mechanizes the paper's race-finding methodology — the authors found
    the races in Stone's queues during "hours-long executions"; here the
    same interleavings are enumerated systematically.  The scheduler runs
    one process at a time and considers switching to each other enabled
    process at every operation boundary, up to a preemption budget.
    Most concurrency bugs, including both Stone races described in §1,
    manifest within one or two preemptions, so a small budget explores a
    polynomial number of schedules yet finds them deterministically.

    Spin-waits are handled by fairness rather than budget: an operation
    that signals waiting ([work]/[yield], i.e. backoff) rotates the
    scheduler to the next enabled process at no preemption cost, so
    blocking algorithms make progress; a schedule that still exceeds
    [max_steps] is reported as diverged (evidence of unbounded
    blocking).

    The algorithm is generic in the execution substrate: {!Make} builds
    an explorer over any {!MACHINE}.  Two substrates exist — the
    simulated-memory {!Machine} (this module's own operations, kept at
    the top level for the historical callers) and {!Native_machine},
    which runs the real [lib/core] queue code instantiated with
    {!Traced_atomic} (see {!Core_explore}).  Both worlds are therefore
    checked by one exploration algorithm. *)

type schedule = (int * int) list
(** Preemption points: [(step_index, process)] pairs, in order. *)

type failure = {
  schedule : schedule;  (** the preemptions that produced the failure *)
  message : string;
  at_step : int option;  (** step index for per-step check failures *)
  trace : string list;
      (** the machine's operation trace at the failure, in execution
          order; [[]] for machines that do not record one *)
}

type outcome = {
  runs : int;  (** schedules executed *)
  failures : failure list;  (** first [max_failures], most-recent last *)
  diverged : int;  (** runs that exceeded [max_steps] *)
}

val pp_schedule : Format.formatter -> schedule -> unit

(** What the exploration algorithm needs from an execution substrate:
    deterministic one-operation-at-a-time stepping of an array of
    process bodies, with [`Pause_hint] marking spin-waits (the
    scheduler rotates instead of spending a preemption). *)
module type MACHINE = sig
  type env
  (** Whatever [spec.make] must produce besides the bodies (the sim
      engine; unit for the native machine). *)

  type t

  val start : env -> (unit -> unit) array -> t
  val n_procs : t -> int
  val enabled : t -> int list
  val all_done : t -> bool
  val step : t -> int -> [ `Ran | `Finished | `Pause_hint ]
  val failure : t -> (int * exn) option
  val steps_taken : t -> int

  val trace : t -> string list
  (** Human-readable rendering of the operations executed so far, in
      execution order; [[]] if the machine does not record one. *)
end

(** The explorer over a given machine. *)
module type EXPLORER = sig
  type env

  type 'ctx spec = {
    make : unit -> env * 'ctx * (unit -> unit) array;
        (** A fresh instance per schedule: machine environment, an
            inspection context (typically the queue handle), and the
            process bodies. *)
    check_final : env -> 'ctx -> (unit, string) result;
        (** Validated after every complete run. *)
    check_step : (env -> 'ctx -> (unit, string) result) option;
        (** Optionally validated after every operation (e.g. structural
            invariants); [None] to skip. *)
  }

  type run_result = {
    status : [ `Completed | `Diverged | `Failed of failure ];
    branches : schedule list;
        (** fresh schedules discovered during the run *)
  }

  val run : 'ctx spec -> schedule:schedule -> budget:int -> max_steps:int -> run_result
  (** One deterministic execution under [schedule].  Exposed for
      replaying a {!failure}'s schedule (e.g. to re-render its trace);
      {!explore} drives it through every schedule of interest. *)

  val explore :
    ?max_preemptions:int ->
    ?max_steps:int ->
    ?max_runs:int ->
    ?max_failures:int ->
    'ctx spec ->
    outcome
  (** Defaults: 2 preemptions, 100_000 steps per run, 1_000_000 runs,
      stop after 5 failures. *)

  val explore_random :
    ?max_preemptions:int ->
    ?max_steps:int ->
    ?runs:int ->
    ?max_failures:int ->
    seed:int64 ->
    'ctx spec ->
    outcome
  (** Probabilistic companion to {!explore} for configurations whose
      systematic schedule space is too large: each run places up to
      [max_preemptions] (default 3) preemptions at uniformly random
      operation boundaries, switching to a uniformly random other
      enabled process.  [runs] defaults to 1_000.  Deterministic in
      [seed].  Complements, never replaces, the exhaustive mode: use it
      to push beyond 2 processes x 1 operation. *)
end

module Make (M : MACHINE) : EXPLORER with type env = M.env

include EXPLORER with type env = Sim.Engine.t
(** The historical interface: exploration over the simulated
    {!Machine}. *)

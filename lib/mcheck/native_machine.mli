(** Deterministic single-step execution of native OCaml processes whose
    atomic operations are {!Traced_atomic} effects — the native-world
    counterpart of {!Machine}, satisfying the same {!Explore.MACHINE}
    contract.

    The bodies run as coroutines of the calling thread: no domains are
    spawned, every interleaving decision belongs to the scheduler, and
    runs are exactly reproducible from a schedule.  [step t i] commits
    process [i]'s announced atomic operation (if any) and advances it to
    its next announce; [`Pause_hint] reports that the process parked at
    an [A.relax] spin-wait, so schedulers should rotate.  Committed
    operations are logged; {!trace} renders them in execution order for
    counterexample dumps. *)

include Explore.MACHINE with type env = unit

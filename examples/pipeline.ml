(* A multi-stage parallel pipeline built from MS queues.

     dune exec examples/pipeline.exe

   Stage 1 parses "requests", stage 2 (two worker domains) does the
   heavy transformation, stage 3 aggregates.  The queues between stages
   are the paper's non-blocking queue, so a slow worker never blocks the
   others — the workload naturally rebalances.  Termination uses a
   poison-pill value per consumer, a standard idiom with concurrent
   queues. *)

type request = { id : int; payload : int }
type parsed = Parsed of request | Stop

let workers = 2
let requests = 20_000

let () =
  let stage1 : parsed Core.Ms_queue.t = Core.Ms_queue.create () in
  let stage2 : (int * int) option Core.Ms_queue.t = Core.Ms_queue.create () in

  (* Stage 1: produce parsed requests, then one Stop per worker. *)
  let producer =
    Domain.spawn (fun () ->
        for id = 1 to requests do
          Core.Ms_queue.enqueue stage1 (Parsed { id; payload = id * 17 })
        done;
        for _ = 1 to workers do
          Core.Ms_queue.enqueue stage1 Stop
        done)
  in

  (* Stage 2: transform.  Each worker drains until its poison pill. *)
  let worker () =
    let rec loop () =
      match Core.Ms_queue.dequeue stage1 with
      | None ->
          Domain.cpu_relax ();
          loop ()
      | Some Stop -> Core.Ms_queue.enqueue stage2 None
      | Some (Parsed r) ->
          (* "heavy" work: a toy digest of the payload *)
          let digest = (r.payload * r.payload) mod 1_000_003 in
          Core.Ms_queue.enqueue stage2 (Some (r.id, digest));
          loop ()
    in
    loop ()
  in
  let pool = List.init workers (fun _ -> Domain.spawn worker) in

  (* Stage 3: aggregate on the main domain. *)
  let stops = ref 0 and seen = ref 0 and checksum = ref 0 in
  while !stops < workers do
    match Core.Ms_queue.dequeue stage2 with
    | None -> Domain.cpu_relax ()
    | Some None -> incr stops
    | Some (Some (_id, digest)) ->
        incr seen;
        checksum := (!checksum + digest) land max_int
  done;
  Domain.join producer;
  List.iter Domain.join pool;
  Printf.printf "pipeline: %d requests through %d workers, checksum %d\n" !seen
    workers !checksum;
  assert (!seen = requests)

(* A tiny multi-queue job server: comparing queue implementations under
   one workload.

     dune exec examples/scheduler.exe

   Jobs arrive on a shared run queue; worker domains pull and execute
   them.  The same server runs over the paper's non-blocking queue and
   its two-lock queue through the common Queue_intf.S signature —
   demonstrating that the two are drop-in replacements, with the choice
   governed by the machine's primitives (paper §5: CAS machines should
   use the non-blocking queue; test&set machines the two-lock queue). *)

type job = { id : int; work : unit -> int }

module Server (Q : Core.Queue_intf.S) = struct
  let run ~workers ~jobs =
    let runq : job option Q.t = Q.create () in
    let results = Array.make jobs 0 in
    let t0 = Unix.gettimeofday () in
    let worker () =
      let rec loop () =
        match Q.dequeue runq with
        | None ->
            Domain.cpu_relax ();
            loop ()
        | Some None -> () (* poison pill: shut down *)
        | Some (Some job) ->
            results.(job.id) <- job.work ();
            loop ()
      in
      loop ()
    in
    let pool = List.init workers (fun _ -> Domain.spawn worker) in
    for id = 0 to jobs - 1 do
      Q.enqueue runq (Some { id; work = (fun () -> (id * id) + 1) })
    done;
    for _ = 1 to workers do
      Q.enqueue runq None
    done;
    List.iter Domain.join pool;
    let dt = Unix.gettimeofday () -. t0 in
    let sum = Array.fold_left ( + ) 0 results in
    Printf.printf "  %-22s %d jobs on %d workers in %.3fs (checksum %d)\n" Q.name
      jobs workers dt sum;
    sum
end

module On_ms = Server (Core.Ms_queue)
module On_two_lock = Server (Core.Two_lock_queue)
module On_single_lock = Server (Baselines.Single_lock_queue)

let () =
  let workers = 3 and jobs = 30_000 in
  Printf.printf "job server, %d workers:\n" workers;
  let a = On_ms.run ~workers ~jobs in
  let b = On_two_lock.run ~workers ~jobs in
  let c = On_single_lock.run ~workers ~jobs in
  assert (a = b && b = c);
  print_endline "scheduler: all queue implementations produced identical results"

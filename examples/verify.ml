(* Verifying a concurrent queue the way this repository verifies the
   paper's: linearizability checking plus preemption-bounded model
   checking.

     dune exec examples/verify.exe

   The walkthrough runs the full pipeline twice — once over the MS
   queue (everything passes) and once over Stone's algorithm (the model
   checker finds the paper's race and prints the offending schedule).
   To verify a queue of your own, implement Squeues.Intf.S over Sim.Api
   and reuse [pipeline] verbatim. *)

let pipeline name (module Q : Squeues.Intf.S) =
  Format.printf "== %s ==@." name;

  (* Step 1: record histories from randomized concurrent executions and
     check each against the sequential FIFO specification. *)
  let lin_failures = ref 0 in
  let rounds = 30 in
  for round = 1 to rounds do
    let eng =
      Sim.Engine.create
        {
          (Sim.Config.with_processors 3) with
          seed = Int64.of_int (round * 65_537);
          quantum = 5_000;
        }
    in
    let q = Q.init eng in
    let recorder = Lincheck.History.create_recorder () in
    for i = 0 to 2 do
      ignore
        (Sim.Engine.spawn eng (fun () ->
             for k = 1 to 3 do
               let v = (i * 100) + k in
               Lincheck.History.record recorder ~proc:i (fun () ->
                   Q.enqueue q v;
                   Lincheck.History.Enq v);
               Sim.Api.work ((i * 53) + (k * 17));
               Lincheck.History.record recorder ~proc:i (fun () ->
                   Lincheck.History.Deq (Q.dequeue q))
             done))
    done;
    ignore (Sim.Engine.run ~max_steps:10_000_000 eng);
    match Lincheck.Checker.check (Lincheck.History.history recorder) with
    | Lincheck.Checker.Linearizable -> ()
    | Lincheck.Checker.Not_linearizable | Lincheck.Checker.Inconclusive ->
        incr lin_failures
  done;
  Format.printf "  lincheck: %d/%d randomized executions linearizable@."
    (rounds - !lin_failures) rounds;

  (* Step 2: exhaustively explore every interleaving of a tiny
     configuration up to two preemptions, checking each history. *)
  let spec =
    let make () =
      let eng = Sim.Engine.create (Sim.Config.with_processors 2) in
      let q = Q.init eng in
      let recorder = Lincheck.History.create_recorder () in
      let bodies =
        Array.init 2 (fun i () ->
            let v = (i * 100) + 1 in
            Lincheck.History.record recorder ~proc:i (fun () ->
                Q.enqueue q v;
                Lincheck.History.Enq v);
            Lincheck.History.record recorder ~proc:i (fun () ->
                Lincheck.History.Deq (Q.dequeue q)))
      in
      (eng, recorder, bodies)
    in
    let check_final _eng recorder =
      match Lincheck.Checker.check (Lincheck.History.history recorder) with
      | Lincheck.Checker.Linearizable -> Ok ()
      | _ -> Error "non-linearizable history"
    in
    { Mcheck.Explore.make; check_final; check_step = None }
  in
  let r = Mcheck.Explore.explore ~max_preemptions:2 spec in
  Format.printf "  mcheck: %d schedules, %d failures@." r.Mcheck.Explore.runs
    (List.length r.Mcheck.Explore.failures);
  List.iteri
    (fun i f ->
      if i < 2 then
        Format.printf "    e.g. %s under %a@." f.Mcheck.Explore.message
          Mcheck.Explore.pp_schedule f.Mcheck.Explore.schedule)
    r.Mcheck.Explore.failures;
  Format.printf "@."

let () =
  pipeline "Michael-Scott non-blocking queue" (module Squeues.Ms_queue);
  pipeline "Stone's queue (the paper's s1 finding)" (module Squeues.Stone_queue)

(* Driving the simulated multiprocessor directly.

     dune exec examples/simulate.exe

   Builds a 4-processor machine, runs the paper's workload over the
   simulated MS queue, injects a long delay into one process, and shows
   that the others are unaffected (the non-blocking property) along
   with the cache/contention statistics the cost model collects.  This
   is the substrate on which the repository regenerates the paper's
   figures — see bin/msq_figures. *)

let () =
  let cfg = Sim.Config.with_processors 4 in
  let eng = Sim.Engine.create cfg in
  let q = Squeues.Ms_queue.init eng in

  let pairs_per_process = 2_000 in
  let body i () =
    for k = 1 to pairs_per_process do
      Squeues.Ms_queue.enqueue q ((i * 100_000) + k);
      Sim.Api.work 1_200 (* ~6 us of "other work", as in the paper *);
      ignore (Squeues.Ms_queue.dequeue q);
      Sim.Api.work 1_200
    done
  in
  let pids = List.init 4 (fun i -> Sim.Engine.spawn eng (body i)) in

  (* Inject a 10M-cycle page-fault-like delay into process 0 partway
     through the run. *)
  Sim.Engine.plan_stall eng (List.hd pids) ~at:1_000_000 ~duration:10_000_000;

  (match Sim.Engine.run eng with
  | Sim.Engine.Completed -> ()
  | Sim.Engine.Step_limit | Sim.Engine.Blocked -> failwith "unexpected step limit");

  Format.printf "simulated 4-processor run:@.";
  List.iteri
    (fun i pid ->
      Format.printf "  process %d finished at cycle %d%s@." i
        (Sim.Engine.finish_time eng pid)
        (if i = 0 then " (victim of a 10M-cycle stall)" else ""))
    pids;
  Format.printf "machine statistics:@.  %a@." Sim.Stats.pp (Sim.Engine.stats eng);

  (* The structure is intact after the run (paper section 3.1). *)
  (match Squeues.Invariant.check eng (Squeues.Ms_queue.descriptor q) with
  | Ok nodes -> Format.printf "invariants hold; %d nodes reachable@." nodes
  | Error v -> Format.printf "INVARIANT VIOLATED: %a@." Squeues.Invariant.pp_violation v);
  Format.printf "queue drained: %d items left@." (Squeues.Ms_queue.length q eng)

(* Quickstart: the Michael-Scott non-blocking queue from OCaml 5 domains.

     dune exec examples/quickstart.exe

   A producer domain enqueues messages while the main domain consumes
   them; no locks, and the producer being descheduled can never stall
   the consumer (it simply sees an empty queue and retries). *)

let () =
  let q : string Core.Ms_queue.t = Core.Ms_queue.create () in

  (* Single-domain use is just a queue. *)
  Core.Ms_queue.enqueue q "hello";
  Core.Ms_queue.enqueue q "world";
  assert (Core.Ms_queue.peek q = Some "hello");
  assert (Core.Ms_queue.dequeue q = Some "hello");
  assert (Core.Ms_queue.dequeue q = Some "world");
  assert (Core.Ms_queue.dequeue q = None);

  (* Concurrent use: one producer domain, this domain consumes. *)
  let messages = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to messages do
          Core.Ms_queue.enqueue q (Printf.sprintf "message %d" i)
        done)
  in
  let received = ref 0 in
  while !received < messages do
    match Core.Ms_queue.dequeue q with
    | Some _ -> incr received
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  assert (Core.Ms_queue.is_empty q);
  Printf.printf "quickstart: consumed %d messages concurrently, queue empty: %b\n"
    !received (Core.Ms_queue.is_empty q)

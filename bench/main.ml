(* Benchmark harness regenerating the paper's complete evaluation:
   - Figures 3, 4, 5: net execution time vs processor count, dedicated
     and multiprogrammed (the paper's only quantitative exhibits);
   - the Section 1 Valois memory-exhaustion experiment;
   - the delay-injection liveness experiment behind Section 3.3;
   - ablations over the design choices DESIGN.md calls out (backoff,
     counted pointers vs GC nodes, free list vs allocation);
   - bechamel microbenchmarks of the native OCaml 5 queues.

   Scale via MSQ_PAIRS (default 20000; the paper used 1e6 — pass
   MSQ_PAIRS=1000000 MSQ_QUANTUM=2000000 for paper scale).  MSQ_JSON=FILE
   additionally writes the machine-readable BENCH_queues.json record
   (figures + native instrumented metrics); MSQ_SMOKE=1 runs a tiny
   subset — figure 3 at small scale plus the native metrics — meant for
   CI schema checks, not for measurement. *)

let smoke = Sys.getenv_opt "MSQ_SMOKE" <> None

let json_path = Sys.getenv_opt "MSQ_JSON"

(* --profile-out FILE: additionally write the cycle-attribution
   [profile] section alone (the CI artifact), independent of MSQ_JSON.
   --memory-out FILE: same for the live-memory [memory] section. *)
let flag_path name =
  let rec scan = function
    | flag :: path :: _ when flag = name -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let profile_path = flag_path "--profile-out"
let memory_path = flag_path "--memory-out"
let soak_path = flag_path "--soak-out"
let fabric_path = flag_path "--fabric-out"
let timeline_path = flag_path "--timeline-out"

let pairs =
  match Sys.getenv_opt "MSQ_PAIRS" with
  | Some s -> int_of_string s
  | None -> if smoke then 2_000 else 20_000

let quantum =
  match Sys.getenv_opt "MSQ_QUANTUM" with
  | Some s -> int_of_string s
  | None -> Harness.Params.default.Harness.Params.quantum

let procs = if smoke then [ 1; 2; 4 ] else [ 1; 2; 3; 4; 6; 8; 10; 12 ]

let base = { Harness.Params.default with total_pairs = pairs; quantum }

let heading title =
  Format.printf "@.=== %s ===@." title

let figures () =
  List.map
    (fun n ->
      heading (Printf.sprintf "Figure %d" n);
      let t0 = Unix.gettimeofday () in
      let fig = Harness.Experiment.figure ~procs ~base n in
      Harness.Report.render Table Format.std_formatter fig;
      if n = 4 then Harness.Report.render Chart Format.std_formatter fig;
      Harness.Report.summary Format.std_formatter fig;
      Format.printf "(generated in %.1fs; %d pairs/point)@."
        (Unix.gettimeofday () -. t0)
        pairs;
      fig)
    (if smoke then [ 3 ] else [ 3; 4; 5 ])

let memory () =
  heading "Section 1: Valois memory exhaustion (queue <= 12 items, bounded free list)";
  let show r = Format.printf "  %a@." Harness.Memory_experiment.pp_result r in
  show (Harness.Memory_experiment.run (module Squeues.Valois_queue) ());
  show (Harness.Memory_experiment.run (module Squeues.Ms_queue) ());
  show (Harness.Memory_experiment.run (module Squeues.Two_lock_queue) ())

(* The live-memory axis — ROADMAP item 3's "run forever under a memory
   budget" made measurable:
   - bytes-per-element and steady-state allocation for every registered
     native queue (unbounded and bounded), from the GC's own accounting;
   - hazard-pointer reclamation lag under chaos-injected stalls;
   - simulated free-list lag (heap fallbacks past a small prefill) with
     a stalled victim, MS vs Valois vs two-lock — the §1 experiment as
     a number instead of a verdict.
   Runs in smoke too (reduced scale) so BENCH_queues.json always
   carries the memory section. *)
let memory_axis () =
  heading "Memory: steady-state footprint, bytes per element, reclamation lag";
  let elements = 1024 in
  let footprints =
    List.map
      (fun { Harness.Registry.queue; _ } ->
        let r = Harness.Memory_experiment.native_footprint queue ~elements () in
        Format.printf "  %a@." Harness.Memory_experiment.pp_footprint r;
        r)
      Harness.Registry.native
    @ List.map
        (fun (e : Harness.Registry.bounded_entry) ->
          let r =
            Harness.Memory_experiment.bounded_footprint e.queue
              ~capacity:elements ()
          in
          Format.printf "  %a@." Harness.Memory_experiment.pp_footprint r;
          r)
        Harness.Registry.native_bounded
  in
  let hp =
    Harness.Memory_experiment.hp_reclamation_lag
      ~ops:(if smoke then 5_000 else 20_000)
      ()
  in
  Format.printf "  %a@." Harness.Memory_experiment.pp_hp_lag hp;
  let sim_lags =
    List.map
      (fun key ->
        let r =
          Harness.Memory_experiment.sim_reclamation_lag
            (Harness.Registry.find key)
            ~pairs:(if smoke then 4_000 else 20_000)
            ()
        in
        Format.printf "  %a@." Harness.Memory_experiment.pp_sim_lag r;
        r)
      [ "ms"; "valois"; "two-lock" ]
  in
  Obs.Json.Assoc
    [
      ( "native",
        Obs.Json.List
          (List.map Harness.Memory_experiment.footprint_json footprints) );
      ("hp_reclamation", Harness.Memory_experiment.hp_lag_json hp);
      ( "sim_reclamation",
        Obs.Json.List
          (List.map Harness.Memory_experiment.sim_lag_json sim_lags) );
    ]

(* Stall and crash injection over the whole registry.  Runs in smoke
   too (at a reduced scale) so BENCH_queues.json always carries the
   robustness section. *)
let robustness () =
  heading
    "Robustness: stall and crash injection (is the algorithm non-blocking?)";
  let liveness =
    if smoke then
      Harness.Liveness.run_all ~procs:4 ~pairs:2_000 ~trials:4
        ~stall_duration:2_000_000 ()
    else Harness.Liveness.run_all ()
  in
  Harness.Report.liveness_table Format.std_formatter liveness;
  let crash =
    Harness.Crash_experiment.run_all ~trials:(if smoke then 12 else 48) ()
  in
  Harness.Report.crash_table Format.std_formatter crash;
  (liveness, crash)

let ablations () =
  heading "Ablation: bounded exponential backoff (p = 12)";
  let run (module Q : Squeues.Intf.S) ~mpl ~backoff =
    let m =
      Harness.Workload.run
        (module Q)
        { base with processors = 12; multiprogramming = mpl; backoff }
    in
    m.Harness.Workload.net_per_pair
  in
  List.iter
    (fun ((module Q : Squeues.Intf.S) as q) ->
      List.iter
        (fun mpl ->
          Format.printf "  %-18s mpl=%d backoff on: %7.0f/pair   off: %7.0f/pair@."
            Q.name mpl (run q ~mpl ~backoff:true) (run q ~mpl ~backoff:false))
        [ 1; 2 ])
    [ (module Squeues.Ms_queue); (module Squeues.Two_lock_queue) ];
  heading "Ablation: free-list pool size (MS queue, p = 12, dedicated)";
  List.iter
    (fun pool ->
      let m =
        Harness.Workload.run
          (module Squeues.Ms_queue)
          { base with processors = 12; pool }
      in
      Format.printf "  pool=%-6d %7.0f/pair (heap fallbacks: %d)@." pool
        m.Harness.Workload.net_per_pair
        (Sim.Stats.counter m.Harness.Workload.stats "pool.heap_alloc"))
    [ 1; 64; 1024 ]

let lock_ablation () =
  heading "Ablation: spin-lock choice (TTAS vs ticket vs MCS, 8 processors)";
  List.iter
    (fun mpl ->
      List.iter
        (fun kind ->
          Format.printf "  %a@." Harness.Lock_experiment.pp_measurement
            (Harness.Lock_experiment.run kind ~processors:8 ~multiprogramming:mpl ()))
        Harness.Lock_experiment.kinds)
    [ 1; 2 ]

let two_lock_lock_ablation () =
  heading "Ablation: two-lock queue over TTAS / ticket / MCS locks (p = 12)";
  List.iter
    (fun mpl ->
      List.iter
        (fun (label, kind) ->
          let eng_params =
            { base with processors = 12; multiprogramming = mpl }
          in
          (* run the standard workload over a queue built with this lock *)
          let module Q = struct
            type t = Squeues.Two_lock_queue.t

            let name = "two-lock(" ^ label ^ ")"
            let init ?options eng =
              Squeues.Two_lock_queue.init_with_lock kind ?options eng

            let enqueue = Squeues.Two_lock_queue.enqueue
            let dequeue = Squeues.Two_lock_queue.dequeue
          end in
          let m = Harness.Workload.run (module Q) eng_params in
          Format.printf "  %-22s mpl=%d %7.0f/pair%s@." Q.name mpl
            m.Harness.Workload.net_per_pair
            (if m.Harness.Workload.completed then "" else " [incomplete]"))
        [ ("ttas", `Ttas); ("ticket", `Ticket); ("mcs", `Mcs) ])
    [ 1; 2 ]

let spsc_ablation () =
  heading "Ablation: SPSC specialization (Lamport [9] vs MS queue, 2 processors)";
  Format.printf "  %a@." Harness.Spsc_experiment.pp_measurement
    (Harness.Spsc_experiment.run_lamport ());
  Format.printf "  %a@." Harness.Spsc_experiment.pp_measurement
    (Harness.Spsc_experiment.run_ms ())

let work_sweep () =
  heading "Extension: other-work sensitivity (p = 8)";
  let series =
    List.map
      (fun { Harness.Registry.algo; _ } -> Harness.Work_sweep.sweep algo ())
      Harness.Registry.all
  in
  Harness.Work_sweep.table Format.std_formatter series;
  Format.printf
    "  (note the single lock at work=0: long same-process runs of queue ops@      \ \ with an unrealistically low miss rate — the paper's stated reason@      \ \ for inserting other work, reproduced)@."

let workload_variants () =
  heading "Extension: workload variants (8 processors)";
  List.iter
    (fun { Harness.Registry.algo; _ } ->
      Format.printf "  %a@." Harness.Workload_variants.pp_measurement
        (Harness.Workload_variants.producer_consumer algo ()))
    Harness.Registry.all;
  List.iter
    (fun { Harness.Registry.algo; _ } ->
      Format.printf "  %a@." Harness.Workload_variants.pp_measurement
        (Harness.Workload_variants.burst algo ()))
    Harness.Registry.all

(* Bechamel microbenchmarks: single-domain cost of an enqueue/dequeue
   pair on the native queues — includes the counted-pointer/free-list
   variant vs the GC variant (an allocation-strategy ablation). *)
let microbench () =
  heading "Native microbenchmarks (single domain, ns per enqueue/dequeue pair)";
  let open Bechamel in
  let open Toolkit in
  let pair (module Q : Core.Queue_intf.S) =
    Test.make ~name:Q.name
      (Staged.stage
         (let q = Q.create () in
          fun () ->
            Q.enqueue q 42;
            ignore (Q.dequeue q)))
  in
  let tests =
    Test.make_grouped ~name:"pair"
      (List.map
         (fun { Harness.Registry.queue; _ } -> pair queue)
         Harness.Registry.native
      @ [
        Test.make ~name:"spsc-lamport"
          (Staged.stage
             (let q = Core.Spsc_queue.create ~capacity:64 in
              fun () ->
                ignore (Core.Spsc_queue.push q 42);
                ignore (Core.Spsc_queue.pop q)));
        Test.make ~name:"treiber-push-pop"
          (Staged.stage
             (let s = Core.Treiber_stack.create () in
              fun () ->
                Core.Treiber_stack.push s 42;
                ignore (Core.Treiber_stack.pop s)));
        ])
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (ns :: _) -> Format.printf "  %-32s %8.1f ns/pair@." name ns
         | Some [] | None -> Format.printf "  %-32s (no estimate)@." name)

(* Native multi-domain throughput sanity check.  On this container (one
   hardware core) domains timeslice, so this measures correctness under
   real parallTo compare scalability use the simulator figures above. *)
let native_domains () =
  heading "Native 2-domain throughput sanity (wall time, timeshared core)";
  let run (module Q : Core.Queue_intf.S) =
    let q = Q.create () in
    let per = 50_000 in
    let t0 = Unix.gettimeofday () in
    let worker () =
      for i = 1 to per do
        Q.enqueue q i;
        ignore (Q.dequeue q)
      done
    in
    let d = Domain.spawn worker in
    worker ();
    Domain.join d;
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "  %-22s %8.0f pairs/s@." Q.name (float_of_int (2 * per) /. dt)
  in
  List.iter (fun { Harness.Registry.queue; _ } -> run queue) Harness.Registry.native

(* Native batched workload: throughput vs batch size, every domain
   hammering one queue with no think time (the highest-contention
   shape).  Runs over every batch-capable queue in the registry;
   batch=1 is the single-element baseline, so the sweep shows directly
   what amortizing the index claim over a batch buys.  This is the
   "batched" section of BENCH_queues.json. *)
let batched_sweep () =
  heading "Native batched workload (2 domains, shared queue, items/s by batch size)";
  (* a trial must span many scheduler timeslices or its wall time is
     mostly noise: at ~4M items/s, 200k items is ~50ms per trial *)
  let items = if smoke then 200_000 else 400_000 in
  (* best-of-5: on a timeshared core a single run's wall time is
     dominated by scheduler noise; the best of several runs
     approximates the machine's capability at each batch size *)
  let repeats = 5 in
  let best_of run =
    let best = ref None in
    for _ = 1 to repeats do
      let m = run () in
      match !best with
      | Some b
        when b.Harness.Workload_variants.items_per_second
             >= m.Harness.Workload_variants.items_per_second ->
          ()
      | _ -> best := Some m
    done;
    let m = Option.get !best in
    Format.printf "  %a@." Harness.Workload_variants.pp_batch_measurement m;
    Obs.Json.Assoc
      [
        ("queue", Obs.Json.String m.Harness.Workload_variants.queue);
        ("batch", Obs.Json.Int m.Harness.Workload_variants.batch);
        ("domains", Obs.Json.Int m.Harness.Workload_variants.domains);
        ("total_items", Obs.Json.Int m.Harness.Workload_variants.total_items);
        ("seconds", Obs.Json.Float m.Harness.Workload_variants.seconds);
        ( "items_per_second",
          Obs.Json.Float m.Harness.Workload_variants.items_per_second );
      ]
  in
  let batches = [ 1; 2; 4; 8; 16; 32 ] in
  List.concat_map
    (fun (e : Harness.Registry.batch_entry) ->
      let (module Q : Core.Queue_intf.BATCH) = e.queue in
      List.map
        (fun batch ->
          best_of (fun () ->
              Harness.Workload_variants.batched (module Q) ~domains:2 ~items
                ~batch ()))
        batches)
    Harness.Registry.native_batch
  (* the fabric's producer-batching path rides the same sweep, so the
     "batched" section compares one-FAA range claims against the
     fabric's route+engine overhead at every batch size *)
  @ List.map
      (fun batch ->
        best_of (fun () ->
            Harness.Workload_variants.fabric_batched ~shards:4 ~domains:2
              ~items ~batch ()))
      batches

(* Native instrumented metrics: every registered queue through the
   [Obs.Instrumented] wrapper with metrics enabled — per-operation
   latency histograms plus the probe events (CAS retries, backoffs,
   E12/D9 help-alongs and segment-transition races) of a two-domain
   enqueue/dequeue workload.  Batch-capable queues additionally run a
   batch=8 workload through [Obs.Instrumented.Make_batch] (reported as
   "<key>/batch8"), so the JSON also attributes segment-transition CAS
   retries to batch operations.  This is the "native" section of
   BENCH_queues.json.

   The throughput fields (pairs_per_second, ns_per_pair) come from a
   separate UNinstrumented best-of-3 run of the same two-domain loop:
   the wrapper's two clock reads per operation cost about as much as a
   fast queue operation itself, which would compress real throughput
   differences between algorithms; and on a timeshared core a single
   run's wall time is mostly scheduler noise.  The latency histograms
   and event counters are from the instrumented run. *)

(* Uninstrumented 2-domain throughput, best of [repeats] runs. *)
let raw_throughput (module Q : Core.Queue_intf.S) ~per ~repeats =
  let run () =
    let q = Q.create () in
    let worker () =
      for i = 1 to per do
        Q.enqueue q i;
        ignore (Q.dequeue q)
      done
    in
    let t0 = Unix.gettimeofday () in
    let d = Domain.spawn worker in
    worker ();
    Domain.join d;
    Unix.gettimeofday () -. t0
  in
  let best = ref (run ()) in
  for _ = 2 to repeats do
    let dt = run () in
    if dt < !best then best := dt
  done;
  !best

let instrumented_metrics () =
  heading "Native instrumented metrics (2 domains, metrics enabled)";
  let per = if smoke then 5_000 else 50_000 in
  let throughput_per = if smoke then 50_000 else 100_000 in
  List.map
    (fun { Harness.Registry.queue = (module Q : Core.Queue_intf.S); _ } ->
      let module I = Obs.Instrumented.Make (Q) in
      let q = I.create () in
      Obs.Control.with_enabled (fun () ->
          let worker () =
            for i = 1 to per do
              I.enqueue q i;
              ignore (I.dequeue q)
            done
          in
          let d = Domain.spawn worker in
          worker ();
          Domain.join d;
          let m = I.metrics q in
          Format.printf "  %a@." Obs.Metrics.pp m;
          let dt = raw_throughput (module Q) ~per:throughput_per ~repeats:3 in
          let total_pairs = 2 * throughput_per in
          let pairs_per_second = float_of_int total_pairs /. dt in
          Format.printf "  %-24s %10.0f pairs/s (uninstrumented best-of-3)@."
            "" pairs_per_second;
          let ns_per_pair = dt *. 1e9 /. float_of_int total_pairs in
          let metric_fields =
            match Obs.Metrics.to_json m with Obs.Json.Assoc kvs -> kvs | _ -> []
          in
          Obs.Json.Assoc
            (metric_fields
            @ [
                ("pairs", Obs.Json.Int total_pairs);
                ("ns_per_pair", Obs.Json.Float ns_per_pair);
                ("pairs_per_second", Obs.Json.Float pairs_per_second);
              ])))
    Harness.Registry.native

let instrumented_batch_metrics () =
  let per = if smoke then 5_000 else 50_000 in
  let batch = 8 in
  List.map
    (fun (e : Harness.Registry.batch_entry) ->
      let (module Q : Core.Queue_intf.BATCH) = e.queue in
      let module I = Obs.Instrumented.Make_batch (Q) in
      let q = I.create () in
      Obs.Control.with_enabled (fun () ->
          let rounds = per / batch in
          let worker () =
            for r = 1 to rounds do
              I.enqueue_batch q (List.init batch (fun k -> (r * batch) + k));
              let got = ref 0 in
              while !got < batch do
                match I.dequeue_batch q ~max:(batch - !got) with
                | [] -> Domain.cpu_relax ()
                | l -> got := !got + List.length l
              done
            done
          in
          let t0 = Unix.gettimeofday () in
          let d = Domain.spawn worker in
          worker ();
          Domain.join d;
          let dt = Unix.gettimeofday () -. t0 in
          let m = I.metrics q in
          Format.printf "  [batch=%d] %a@." batch Obs.Metrics.pp m;
          let total_items = 2 * rounds * batch in
          let metric_fields =
            match Obs.Metrics.to_json m with
            | Obs.Json.Assoc kvs ->
                (* rename so the entry is distinguishable from the same
                   queue's single-op record in the "native" list *)
                List.map
                  (function
                    | "name", Obs.Json.String n ->
                        ("name", Obs.Json.String (Printf.sprintf "%s/batch%d" n batch))
                    | kv -> kv)
                  kvs
            | _ -> []
          in
          Obs.Json.Assoc
            (metric_fields
            @ [
                ("batch", Obs.Json.Int batch);
                ("items", Obs.Json.Int total_items);
                ( "items_per_second",
                  Obs.Json.Float (float_of_int total_items /. dt) );
              ])))
    Harness.Registry.native_batch

(* Bounded queues through [Obs.Instrumented.Make_bounded]: the same
   two-domain shape over try_enqueue/try_dequeue at a capacity small
   enough (64) that full verdicts actually occur and the full_enqueues
   counter means something.  Throughput is separate and uninstrumented,
   as above. *)
let instrumented_bounded_metrics () =
  let per = if smoke then 5_000 else 50_000 in
  let throughput_per = if smoke then 50_000 else 100_000 in
  List.map
    (fun (e : Harness.Registry.bounded_entry) ->
      let (module Q : Core.Queue_intf.BOUNDED) = e.queue in
      let module I = Obs.Instrumented.Make_bounded (Q) in
      let q = I.create ~capacity:64 () in
      Obs.Control.with_enabled (fun () ->
          let worker () =
            for i = 1 to per do
              ignore (I.try_enqueue q i);
              ignore (I.try_dequeue q)
            done
          in
          let d = Domain.spawn worker in
          worker ();
          Domain.join d;
          let m = I.metrics q in
          Format.printf "  [capacity=64] %a@." Obs.Metrics.pp m;
          let raw () =
            let q = Q.create ~capacity:64 () in
            let worker () =
              for i = 1 to throughput_per do
                ignore (Q.try_enqueue q i);
                ignore (Q.try_dequeue q)
              done
            in
            let t0 = Unix.gettimeofday () in
            let d = Domain.spawn worker in
            worker ();
            Domain.join d;
            Unix.gettimeofday () -. t0
          in
          let best = ref (raw ()) in
          for _ = 2 to 3 do
            let dt = raw () in
            if dt < !best then best := dt
          done;
          let total_pairs = 2 * throughput_per in
          let pairs_per_second = float_of_int total_pairs /. !best in
          Format.printf "  %-24s %10.0f pairs/s (uninstrumented best-of-3)@."
            "" pairs_per_second;
          let metric_fields =
            match Obs.Metrics.to_json m with Obs.Json.Assoc kvs -> kvs | _ -> []
          in
          Obs.Json.Assoc
            (metric_fields
            @ [
                ("capacity", Obs.Json.Int 64);
                ("pairs", Obs.Json.Int total_pairs);
                ( "ns_per_pair",
                  Obs.Json.Float (!best *. 1e9 /. float_of_int total_pairs) );
                ("pairs_per_second", Obs.Json.Float pairs_per_second);
              ])))
    Harness.Registry.native_bounded

(* Cycle attribution — the "where the cycles go" section:
   - simulated cache-line heatmaps for the paper's three main queues at
     p = 1 and p = 8 (deterministic; small pair count, this is about
     attribution, not throughput);
   - native per-site contention and per-phase spans over the whole
     registry under two real domains (Obs.Profile; site labels carry
     the algorithm prefix, so one snapshot covers all queues).
   Runs in smoke too so BENCH_queues.json always carries the section. *)
let profile_section () =
  heading "Cycle attribution: simulated cache-line heatmaps";
  let ppairs = if smoke then 2_000 else 4_000 in
  let sim_entries =
    List.concat_map
      (fun key ->
        List.map
          (fun p ->
            let m =
              Harness.Workload.run ~heatmap:true (Harness.Registry.find key)
                { base with total_pairs = ppairs; processors = p }
            in
            Format.printf "@.%s p=%d (%d pairs):@." key p ppairs;
            Harness.Report.heatmap_table ~top:5 Format.std_formatter
              m.Harness.Workload.heatmap;
            Obs.Json.Assoc
              [
                ("queue", Obs.Json.String key);
                ("processors", Obs.Json.Int p);
                ("pairs", Obs.Json.Int ppairs);
                ("lines", Harness.Report.heatmap_json m.Harness.Workload.heatmap);
              ])
          [ 1; 8 ])
      [ "ms"; "two-lock"; "single-lock" ]
  in
  heading "Cycle attribution: native per-site contention (2 domains)";
  let per = if smoke then 5_000 else 20_000 in
  Obs.Profile.reset ();
  Obs.Profile.enable ();
  List.iter
    (fun { Harness.Registry.queue = (module Q : Core.Queue_intf.S); _ } ->
      let q = Q.create () in
      let worker () =
        for i = 1 to per do
          Q.enqueue q i;
          ignore (Q.dequeue q)
        done
      in
      let d = Domain.spawn worker in
      worker ();
      Domain.join d)
    Harness.Registry.native;
  Obs.Profile.disable ();
  let native_prof = Obs.Profile.snapshot () in
  Format.printf "%a" Obs.Profile.pp native_prof;
  Obs.Json.Assoc
    [
      ("sim_heatmaps", Obs.Json.List sim_entries);
      ("native", Obs.Profile.to_json native_prof);
    ]

(* Fault-storm soak — the resilience section: every native queue under
   chaos storms, stalled hazard-pointer readers and worker crash/restart,
   with conservation/FIFO/length/reclamation audits, plus the simulated
   crash+restart battery.  Short here (CI's long soak is the nightly
   [msq_check soak] job); runs in smoke too so the schema-6 [soak]
   section is always present. *)
let soak_section () =
  heading "Soak: fault storm (chaos + crash/restart) over the native queues";
  let seed = 0x534F414BL (* "SOAK" *) in
  let ops = if smoke then 300 else 800 in
  let reports = Harness.Soak.run_all ~rounds:2 ~ops ~deadline_s:120. ~seed () in
  List.iter (fun r -> Format.printf "  %a@." Harness.Soak.pp_report r) reports;
  heading "Soak: simulated crash + restart battery";
  let sims = Harness.Soak.sim_battery ~seed () in
  List.iter (fun r -> Format.printf "  %a@." Harness.Soak.pp_sim_result r) sims;
  Obs.Json.Assoc
    [
      ("seed", Obs.Json.String (Printf.sprintf "0x%Lx" seed));
      ("native", Obs.Json.List (List.map Harness.Soak.report_json reports));
      ("sim", Obs.Json.List (List.map Harness.Soak.sim_result_json sims));
    ]

(* The fabric axis — the schema-7 [fabric] section:
   - deterministic simulated shard scaling: the paper's pairs workload
     over the keyed simulated fabric at 1 and 8 shards, p = 8.  These
     net_per_pair points fold into the bench-diff sim gate, and the
     8-shard/1-shard ratio is the >=3x aggregate-throughput claim
     [msq_check fabric] enforces;
   - the heatmap disjoint-writer verdict for those runs (per-shard
     Head/Tail/entry lines written by disjoint processor sets);
   - native open-loop latency under offered load: Poisson arrivals at a
     few rates against a bounded sharded fabric, sojourn p50/p99/p999
     per point with an absolute p999 SLO.  The SLO is deliberately
     generous (500 ms) because CI shares one hardware core — it exists
     to catch collapse (unbounded queueing), not drift; the relative
     p999 gate against the baseline is Bench_compare's job.  The top
     rate also runs skewed keys and a producer crash/restart so the
     artifact exercises the whole generator. *)
let fabric_section () =
  heading "Fabric: simulated shard scaling (p = 8, keyed routing)";
  let fpairs = if smoke then 2_000 else 8_000 in
  let sim_points =
    List.map
      (fun shards ->
        let m =
          Harness.Workload.run ~heatmap:true
            (Squeues.Fabric_queue.algo ~shards)
            { base with total_pairs = fpairs; processors = 8 }
        in
        Format.printf "  %d shard(s): %7.0f cycles/pair%s@." shards
          m.Harness.Workload.net_per_pair
          (if m.Harness.Workload.completed then "" else " [incomplete]");
        (shards, m))
      [ 1; 8 ]
  in
  let disjoint =
    List.for_all
      (fun (_, m) ->
        Squeues.Fabric_queue.writers_disjoint m.Harness.Workload.heatmap)
      sim_points
  in
  Format.printf "  per-shard writer sets disjoint: %b@." disjoint;
  heading "Fabric: open-loop latency under offered load (native, timeshared core)";
  let slo_p999_ns = 500_000_000 in
  let arrivals = if smoke then 3_000 else 20_000 in
  let loads =
    (* label, rate, skew, crash *)
    if smoke then [ ("20k", 20_000., 0., false); ("50k", 50_000., 1.2, true) ]
    else
      [
        ("20k", 20_000., 0., false);
        ("100k", 100_000., 0., false);
        ("300k", 300_000., 1.2, true);
      ]
  in
  let open_points =
    List.map
      (fun (label, rate, skew, crash) ->
        let fab =
          Fabric.Queue_fabric.create
            ~config:
              {
                Fabric.Queue_fabric.default_config with
                shards = 4;
                shard_capacity = 4_096;
              }
            ()
        in
        let r =
          Harness.Open_loop.run
            ~config:
              {
                Harness.Open_loop.default with
                seed = 0xFABL;
                rate;
                arrivals;
                key_skew = skew;
                crash_restart = crash;
              }
            fab
        in
        Format.printf "  %a@." Harness.Open_loop.pp_result r;
        let _, _, p999 = Harness.Open_loop.percentiles r.Harness.Open_loop.sojourn in
        let slo_ok = p999 <= slo_p999_ns in
        match Harness.Open_loop.result_json r with
        | Obs.Json.Assoc kvs ->
            Obs.Json.Assoc
              (kvs
              @ [
                  ("load_label", Obs.Json.String label);
                  ("slo_p999_ns", Obs.Json.Int slo_p999_ns);
                  ("slo_ok", Obs.Json.Bool slo_ok);
                ])
        | j -> j)
      loads
  in
  Obs.Json.Assoc
    [
      ( "sim_scaling",
        Obs.Json.List
          (List.map
             (fun (shards, m) ->
               Obs.Json.Assoc
                 [
                   ("shards", Obs.Json.Int shards);
                   ("processors", Obs.Json.Int 8);
                   ("pairs", Obs.Json.Int fpairs);
                   ( "net_per_pair",
                     Obs.Json.Float m.Harness.Workload.net_per_pair );
                   ("completed", Obs.Json.Bool m.Harness.Workload.completed);
                 ])
             sim_points) );
      ("heatmap_disjoint", Obs.Json.Bool disjoint);
      ("open_loop", Obs.Json.List open_points);
    ]

(* The schema-8 [timeline] section: a live sampling domain watches two
   runs happen — an instrumented ms-queue two-domain loop (operation
   rates, windowed latency quantiles, queue length) and a fabric
   open-loop run (per-shard depths, breaker states, sojourn quantiles;
   [Harness.Open_loop] auto-registers its sources because the sampler
   is active).  The export is the dashboard timeline plus an
   OpenMetrics rendering of the final values. *)
let timeline_section () =
  heading "Telemetry: sampled timeline (5 ms period)";
  Obs.Sampler.clear ();
  Obs.Sampler.start ~period_ns:5_000_000 ();
  let per = if smoke then 30_000 else 100_000 in
  let (module Q : Core.Queue_intf.S) =
    (List.hd Harness.Registry.native).Harness.Registry.queue
  in
  let module I = Obs.Instrumented.Make (Q) in
  let q = I.create () in
  Obs.Sampler.register_metrics ~prefix:"msq" (I.metrics q);
  Obs.Sampler.register_gauge "msq.length" (fun () ->
      float_of_int (I.length q));
  Obs.Control.with_enabled (fun () ->
      let worker () =
        for i = 1 to per do
          I.enqueue q i;
          ignore (I.dequeue q)
        done
      in
      let d = Domain.spawn worker in
      worker ();
      Domain.join d);
  Obs.Sampler.remove ~prefix:"msq";
  let fab =
    Fabric.Queue_fabric.create
      ~config:
        {
          Fabric.Queue_fabric.default_config with
          shards = 4;
          shard_capacity = 4_096;
        }
      ()
  in
  let r =
    Harness.Open_loop.run
      ~config:
        {
          Harness.Open_loop.default with
          seed = 0x7E1EL;
          rate = 50_000.;
          arrivals = (if smoke then 2_000 else 10_000);
        }
      fab
  in
  Format.printf "  %a@." Harness.Open_loop.pp_result r;
  Obs.Sampler.stop ();
  let timeline = Obs.Sampler.timeline_json () in
  Harness.Report.timeline_table Format.std_formatter timeline;
  Obs.Sampler.clear ();
  timeline

let write_json figs native batched ~robustness:(liveness, crash) ~profile
    ~memory ~soak ~fabric ~timeline =
  let write what path section =
    Obs.Json.write_file path section;
    Format.printf "@.wrote %s to %s@." what path
  in
  Option.iter (fun p -> write "profile" p profile) profile_path;
  Option.iter (fun p -> write "memory section" p memory) memory_path;
  Option.iter (fun p -> write "soak section" p soak) soak_path;
  Option.iter (fun p -> write "fabric section" p fabric) fabric_path;
  Option.iter (fun p -> write "timeline" p timeline) timeline_path;
  match json_path with
  | None -> ()
  | Some path ->
      let doc =
        Obs.Json.Assoc
          [
            ("schema_version", Obs.Json.Int 8);
            ("suite", Obs.Json.String "msqueue-bench");
            ("pairs", Obs.Json.Int pairs);
            ("quantum", Obs.Json.Int quantum);
            ("smoke", Obs.Json.Bool smoke);
            ("figures", Obs.Json.List (List.map Harness.Report.figure_json figs));
            ("native", Obs.Json.List native);
            ("batched", Obs.Json.List batched);
            ("robustness", Harness.Report.robustness_json ~liveness ~crash);
            ("profile", profile);
            ("memory", memory);
            ("soak", soak);
            ("fabric", fabric);
            ("timeline", timeline);
          ]
      in
      Obs.Json.write_file path doc;
      Format.printf "@.wrote %s@." path

let () =
  Format.printf "msqueue benchmark suite — reproduction of Michael & Scott, PODC 1996@.";
  Format.printf "(%d total pairs per point; quantum %d cycles%s)@." pairs quantum
    (if smoke then "; SMOKE subset" else "");
  let figs = figures () in
  if not smoke then begin
    memory ();
    ablations ();
    lock_ablation ();
    two_lock_lock_ablation ();
    spsc_ablation ();
    workload_variants ();
    work_sweep ();
    microbench ();
    native_domains ()
  end;
  let robustness = robustness () in
  let batched = batched_sweep () in
  let native =
    instrumented_metrics () @ instrumented_batch_metrics ()
    @ instrumented_bounded_metrics ()
  in
  let profile = profile_section () in
  let memory = memory_axis () in
  let soak = soak_section () in
  let fabric = fabric_section () in
  let timeline = timeline_section () in
  write_json figs native batched ~robustness ~profile ~memory ~soak ~fabric
    ~timeline;
  Format.printf "@.done.@."
